package flash

import (
	"fmt"
	"sync"
	"time"
)

// blockState is the simulator's per-block bookkeeping.
type blockState struct {
	// writePointer is the offset of the next free page; pages below it
	// have been programmed since the last erase.
	writePointer int
	// eraseCount is the number of erases the block has endured.
	eraseCount int
	// eraseSeq is the global erase counter value at the block's last erase.
	eraseSeq uint64
	// spares holds the spare area contents of programmed pages.
	spares []SpareArea
}

// Device is a simulated NAND flash device. All methods are safe for
// concurrent use, although the FTLs in this repository drive it from a single
// goroutine per simulation.
//
// The device accounts every operation under the caller-supplied Purpose; the
// experiment harness uses these counters to reproduce the per-component
// write-amplification breakdowns of the paper's evaluation.
type Device struct {
	mu       sync.Mutex
	cfg      Config
	blocks   []blockState
	counters Counters
	writeSeq uint64
	eraseSeq uint64
	powered  bool
}

// NewDevice creates a device with every block erased and empty.
func NewDevice(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		cfg:     cfg,
		blocks:  make([]blockState, cfg.Blocks),
		powered: true,
	}
	for i := range d.blocks {
		d.blocks[i].spares = make([]SpareArea, cfg.PagesPerBlock)
	}
	return d, nil
}

// MustNewDevice is NewDevice that panics on configuration errors. It is used
// by tests and examples where the configuration is a literal.
func MustNewDevice(cfg Config) *Device {
	d, err := NewDevice(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// check validates power state and block range; callers hold d.mu.
func (d *Device) check(block BlockID) error {
	if !d.powered {
		return ErrPowerFailed
	}
	if block < 0 || int(block) >= d.cfg.Blocks {
		return fmt.Errorf("%w: block %d of %d", ErrOutOfRange, block, d.cfg.Blocks)
	}
	return nil
}

func (d *Device) checkPage(block BlockID, offset int) error {
	if err := d.check(block); err != nil {
		return err
	}
	if offset < 0 || offset >= d.cfg.PagesPerBlock {
		return fmt.Errorf("%w: offset %d of %d", ErrOutOfRange, offset, d.cfg.PagesPerBlock)
	}
	return nil
}

// WritePage programs the page at ppn together with its spare area. It
// enforces the NAND constraints: the page must be free and, when strict
// sequential writes are enabled, must be the block's next free page.
// The returned sequence number is the device-wide write timestamp recorded in
// the spare area.
func (d *Device) WritePage(ppn PPN, spare SpareArea, p Purpose) (uint64, error) {
	addr := Decompose(ppn, d.cfg.PagesPerBlock)
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkPage(addr.Block, addr.Offset); err != nil {
		return 0, err
	}
	blk := &d.blocks[addr.Block]
	if addr.Offset < blk.writePointer {
		return 0, fmt.Errorf("%w: %v", ErrPageNotFree, addr)
	}
	if d.cfg.StrictSequentialWrites && addr.Offset != blk.writePointer {
		return 0, fmt.Errorf("%w: %v (write pointer at %d)", ErrNonSequentialWrite, addr, blk.writePointer)
	}
	d.writeSeq++
	spare.WriteSeq = d.writeSeq
	spare.EraseCount = uint32(blk.eraseCount)
	spare.EraseSeq = blk.eraseSeq
	blk.spares[addr.Offset] = spare
	if addr.Offset >= blk.writePointer {
		blk.writePointer = addr.Offset + 1
	}
	d.counters.Record(OpPageWrite, p, d.cfg.Latency.PageWrite)
	return d.writeSeq, nil
}

// ReadPage reads the page at ppn. The simulator stores no payload, so the
// call only validates that the page has been programmed and accounts the IO.
func (d *Device) ReadPage(ppn PPN, p Purpose) error {
	addr := Decompose(ppn, d.cfg.PagesPerBlock)
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkPage(addr.Block, addr.Offset); err != nil {
		return err
	}
	blk := &d.blocks[addr.Block]
	if addr.Offset >= blk.writePointer {
		return fmt.Errorf("%w: %v", ErrPageNotWritten, addr)
	}
	d.counters.Record(OpPageRead, p, d.cfg.Latency.PageRead)
	return nil
}

// ReadSpare reads only the spare area of the page at ppn. Unlike ReadPage it
// succeeds on unprogrammed pages and reports whether the page was programmed,
// because recovery scans probe spare areas of possibly-free pages.
func (d *Device) ReadSpare(ppn PPN, p Purpose) (SpareArea, bool, error) {
	addr := Decompose(ppn, d.cfg.PagesPerBlock)
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkPage(addr.Block, addr.Offset); err != nil {
		return SpareArea{}, false, err
	}
	blk := &d.blocks[addr.Block]
	d.counters.Record(OpSpareRead, p, d.cfg.Latency.SpareRead)
	if addr.Offset >= blk.writePointer {
		return SpareArea{}, false, nil
	}
	return blk.spares[addr.Offset], true, nil
}

// EraseBlock erases a block, freeing all of its pages.
func (d *Device) EraseBlock(block BlockID, p Purpose) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(block); err != nil {
		return err
	}
	blk := &d.blocks[block]
	if d.cfg.MaxEraseCount > 0 && blk.eraseCount >= d.cfg.MaxEraseCount {
		return fmt.Errorf("%w: block %d erased %d times", ErrWornOut, block, blk.eraseCount)
	}
	d.eraseSeq++
	blk.eraseCount++
	blk.eraseSeq = d.eraseSeq
	blk.writePointer = 0
	for i := range blk.spares {
		blk.spares[i] = SpareArea{}
	}
	d.counters.Record(OpErase, p, d.cfg.Latency.Erase)
	return nil
}

// WritePointer returns the next free page offset of a block (equal to
// PagesPerBlock when the block is full). It models the FTL's own in-RAM
// knowledge of its active blocks and is not an IO.
func (d *Device) WritePointer(block BlockID) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(block); err != nil {
		return 0, err
	}
	return d.blocks[block].writePointer, nil
}

// EraseCount returns the number of erases a block has endured. Not an IO.
func (d *Device) EraseCount(block BlockID) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(block); err != nil {
		return 0, err
	}
	return d.blocks[block].eraseCount, nil
}

// GlobalEraseSeq returns the device-wide erase counter. Not an IO.
func (d *Device) GlobalEraseSeq() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.eraseSeq
}

// GlobalWriteSeq returns the device-wide write sequence number. Not an IO.
func (d *Device) GlobalWriteSeq() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writeSeq
}

// Counters returns a snapshot of the IO counters.
func (d *Device) Counters() Counters {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.counters.Snapshot()
}

// ResetCounters zeroes the IO counters, typically after a warm-up phase so
// that steady-state write-amplification can be measured.
func (d *Device) ResetCounters() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.counters.Reset()
}

// PowerFail simulates an abrupt power failure: the device refuses all
// operations until PowerOn is called. Flash contents survive; anything the
// FTL kept in integrated RAM does not (that loss is the FTL's concern).
func (d *Device) PowerFail() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.powered = false
}

// PowerOn restores power after a PowerFail.
func (d *Device) PowerOn() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.powered = true
}

// Powered reports whether the device currently has power.
func (d *Device) Powered() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.powered
}

// SimulatedTime returns the total device time consumed so far under the
// latency model.
func (d *Device) SimulatedTime() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.counters.Elapsed()
}

// BlocksEndurance returns min, max and mean erase counts across all blocks.
// The wear-leveling tests use it to bound erase-count discrepancies.
func (d *Device) BlocksEndurance() (min, max int, mean float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.blocks) == 0 {
		return 0, 0, 0
	}
	min = d.blocks[0].eraseCount
	max = d.blocks[0].eraseCount
	var total int64
	for i := range d.blocks {
		ec := d.blocks[i].eraseCount
		if ec < min {
			min = ec
		}
		if ec > max {
			max = ec
		}
		total += int64(ec)
	}
	return min, max, float64(total) / float64(len(d.blocks))
}
