package flash

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// blockState is the simulator's per-block bookkeeping. It is guarded by the
// lock of the die the block resides on.
type blockState struct {
	// writePointer is the offset of the next free page; pages below it
	// have been programmed since the last erase.
	writePointer int
	// eraseCount is the number of erases the block has endured.
	eraseCount int
	// eraseSeq is the global erase counter value at the block's last erase.
	eraseSeq uint64
	// spares holds the spare area contents of programmed pages.
	spares []SpareArea
	// readCount counts full-page reads since the last erase: the
	// read-disturb accumulation. It is physical charge state, so it survives
	// power failures and is reset only by an erase.
	readCount int
	// bad marks pages whose program pulse failed; they hold nothing readable
	// and read back as unprogrammed. Allocated lazily on the first failure.
	bad []bool
	// retired marks a grown bad block: an erase failed on it, or it was
	// caught worn out. Retirement is recorded in the device's bad-block
	// table (out-of-band, as on real controllers), so it is device truth
	// that survives power failures; retired blocks refuse programs and
	// erases forever.
	retired bool
}

// dieState is the per-die latch and accounting. Locking the mutex models the
// die's ready/busy line: two operations on the same die serialize, while
// operations on different dies proceed in parallel.
type dieState struct {
	mu sync.Mutex
	// counters accounts the IO executed by this die; the device aggregates
	// them on demand. The counters' elapsed time is the die's busy time.
	counters Counters
	// busyUntil is the instant, on the device-wide virtual timeline, at which
	// the die's most recently issued operation completes. Unlike the
	// counters' elapsed time it respects idle gaps: an operation issued after
	// the arrival clock (see Device.SyncArrival) has moved past the die's
	// last completion starts at the arrival instant, not back-to-back. The
	// latency instrumentation derives per-operation service times — queueing
	// behind the die included — from this clock.
	busyUntil time.Duration
}

// Device is a simulated NAND flash device organized as Config.Channels
// channels of Config.DiesPerChannel dies each. All methods are safe for
// concurrent use: per-die locks latch each die independently, so callers
// (such as the sharded ftl.Engine) can dispatch page reads, writes and
// erases to independent dies in parallel.
//
// The device accounts every operation under the caller-supplied Purpose; the
// experiment harness uses these counters to reproduce the per-component
// write-amplification breakdowns of the paper's evaluation. Counters are kept
// per die: SimulatedTime sums all die-busy time (the serial, single-plane
// cost), ParallelSimulatedTime takes the busiest die (the wall-clock of a
// perfectly overlapped controller).
type Device struct {
	cfg      Config
	dies     []dieState
	blocks   []blockState
	writeSeq atomic.Uint64
	eraseSeq atomic.Uint64
	powered  atomic.Bool
	// arrival is the device-wide arrival clock in nanoseconds: no operation
	// starts before it. Callers that dispatch work in rounds (the sharded
	// ftl.Engine's batches) ratchet it forward with SyncArrival so that
	// per-operation latencies measure queueing within the current round
	// rather than against dies idle since an earlier one.
	arrival atomic.Int64
	// faults, when non-nil, is the installed fault plan (SetFaultPlan).
	faults *FaultPlan
	// opSeq counts attempts per operation kind device-wide; scripted fault
	// schedules key on these counts.
	opSeq [numOps]atomic.Uint64
}

// NewDevice creates a device with every block erased and empty.
func NewDevice(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		cfg:    cfg,
		dies:   make([]dieState, cfg.Dies()),
		blocks: make([]blockState, cfg.Blocks),
	}
	for i := range d.blocks {
		d.blocks[i].spares = make([]SpareArea, cfg.PagesPerBlock)
	}
	d.powered.Store(true)
	return d, nil
}

// MustNewDevice is NewDevice that panics on configuration errors. It is used
// by tests and examples where the configuration is a literal.
func MustNewDevice(cfg Config) *Device {
	d, err := NewDevice(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// SetFaultPlan installs (or, with a zero plan, clears) the device's fault
// plan. Install it before issuing IO: the call is not synchronized with
// in-flight operations. The scripted schedule's operation counts advance
// only while a plan is installed.
func (d *Device) SetFaultPlan(plan FaultPlan) error {
	if err := plan.Validate(); err != nil {
		return err
	}
	if plan.ProgramFailRate == 0 && plan.EraseFailRate == 0 &&
		plan.ReadDisturbLimit == 0 && len(plan.Schedule) == 0 {
		d.faults = nil
		return nil
	}
	plan.Schedule = append([]FaultEvent(nil), plan.Schedule...)
	d.faults = &plan
	return nil
}

// die returns the die state that latches the given block.
func (d *Device) die(block BlockID) *dieState {
	return &d.dies[d.cfg.DieOfBlock(block)]
}

// record charges one operation to a die (which must be locked by the caller)
// and advances the die's busy-until clock: the operation starts when the die
// is free, the device-wide arrival clock has been reached, and the caller's
// extra floor (a partition's own arrival clock) has passed; it completes one
// latency later. The floor is what keeps an operation issued to an idle die
// of a multi-die partition from starting "in the past" relative to the
// partition's clock, which would under-report its latency.
func (d *Device) record(die *dieState, op Op, p Purpose, cost, floor time.Duration) {
	die.counters.Record(op, p, cost)
	start := die.busyUntil
	if a := time.Duration(d.arrival.Load()); a > start {
		start = a
	}
	if floor > start {
		start = floor
	}
	die.busyUntil = start + cost
}

// check validates power state and block range.
func (d *Device) check(block BlockID) error {
	if !d.powered.Load() {
		return ErrPowerFailed
	}
	if block < 0 || int(block) >= d.cfg.Blocks {
		return fmt.Errorf("%w: block %d of %d", ErrOutOfRange, block, d.cfg.Blocks)
	}
	return nil
}

func (d *Device) checkPage(block BlockID, offset int) error {
	if err := d.check(block); err != nil {
		return err
	}
	if offset < 0 || offset >= d.cfg.PagesPerBlock {
		return fmt.Errorf("%w: offset %d of %d", ErrOutOfRange, offset, d.cfg.PagesPerBlock)
	}
	return nil
}

// WritePage programs the page at ppn together with its spare area. It
// enforces the NAND constraints: the page must be free and, when strict
// sequential writes are enabled, must be the block's next free page.
// The returned sequence number is the device-wide write timestamp recorded in
// the spare area.
func (d *Device) WritePage(ppn PPN, spare SpareArea, p Purpose) (uint64, error) {
	return d.writePage(ppn, spare, p, 0)
}

// writePage is WritePage with a caller-supplied start floor on the virtual
// timeline (see record); partitions pass their own arrival clock.
func (d *Device) writePage(ppn PPN, spare SpareArea, p Purpose, floor time.Duration) (uint64, error) {
	addr := Decompose(ppn, d.cfg.PagesPerBlock)
	if err := d.checkPage(addr.Block, addr.Offset); err != nil {
		return 0, err
	}
	die := d.die(addr.Block)
	die.mu.Lock()
	defer die.mu.Unlock()
	blk := &d.blocks[addr.Block]
	if blk.retired {
		// The controller consults its bad-block table before issuing the
		// pulse, so a program aimed at a retired block costs no device time.
		return 0, fmt.Errorf("%w: %v: block retired", ErrProgramFailed, addr)
	}
	if addr.Offset < blk.writePointer {
		return 0, fmt.Errorf("%w: %v", ErrPageNotFree, addr)
	}
	if d.cfg.StrictSequentialWrites && addr.Offset != blk.writePointer {
		return 0, fmt.Errorf("%w: %v (write pointer at %d)", ErrNonSequentialWrite, addr, blk.writePointer)
	}
	if d.faults != nil && d.faults.fails(OpPageWrite, d.opSeq[OpPageWrite].Add(1), addr.Block, addr.Offset, blk.eraseCount) {
		// The program pulse ran and failed: the page is consumed — marked
		// bad, the write pointer moves past it — and the full program time
		// was spent. The FTL retries on the block's next free page.
		if blk.bad == nil {
			blk.bad = make([]bool, d.cfg.PagesPerBlock)
		}
		blk.bad[addr.Offset] = true
		if addr.Offset >= blk.writePointer {
			blk.writePointer = addr.Offset + 1
		}
		d.record(die, OpPageWrite, p, d.cfg.Latency.PageWrite, floor)
		return 0, fmt.Errorf("%w: %v", ErrProgramFailed, addr)
	}
	seq := d.writeSeq.Add(1)
	spare.WriteSeq = seq
	spare.EraseCount = uint32(blk.eraseCount)
	spare.EraseSeq = blk.eraseSeq
	blk.spares[addr.Offset] = spare
	if addr.Offset >= blk.writePointer {
		blk.writePointer = addr.Offset + 1
	}
	d.record(die, OpPageWrite, p, d.cfg.Latency.PageWrite, floor)
	return seq, nil
}

// ReadPage reads the page at ppn. The simulator stores no payload, so the
// call only validates that the page has been programmed and accounts the IO.
func (d *Device) ReadPage(ppn PPN, p Purpose) error {
	return d.readPage(ppn, p, 0)
}

// readPage is ReadPage with a caller-supplied start floor.
func (d *Device) readPage(ppn PPN, p Purpose, floor time.Duration) error {
	addr := Decompose(ppn, d.cfg.PagesPerBlock)
	if err := d.checkPage(addr.Block, addr.Offset); err != nil {
		return err
	}
	die := d.die(addr.Block)
	die.mu.Lock()
	defer die.mu.Unlock()
	blk := &d.blocks[addr.Block]
	if addr.Offset >= blk.writePointer {
		return fmt.Errorf("%w: %v", ErrPageNotWritten, addr)
	}
	if blk.bad != nil && blk.bad[addr.Offset] {
		// A page whose program failed holds nothing readable.
		return fmt.Errorf("%w: %v: program failed", ErrPageNotWritten, addr)
	}
	blk.readCount++
	d.record(die, OpPageRead, p, d.cfg.Latency.PageRead, floor)
	if d.faults != nil {
		n := d.opSeq[OpPageRead].Add(1)
		if limit := d.faults.ReadDisturbLimit; limit > 0 && blk.readCount > limit {
			return fmt.Errorf("%w: %v after %d reads since erase", ErrReadDecayed, addr, blk.readCount)
		}
		if d.faults.scheduled(OpPageRead, n) {
			return fmt.Errorf("%w: %v (scheduled)", ErrReadDecayed, addr)
		}
	}
	return nil
}

// ReadSpare reads only the spare area of the page at ppn. Unlike ReadPage it
// succeeds on unprogrammed pages and reports whether the page was programmed,
// because recovery scans probe spare areas of possibly-free pages.
func (d *Device) ReadSpare(ppn PPN, p Purpose) (SpareArea, bool, error) {
	return d.readSpare(ppn, p, 0)
}

// readSpare is ReadSpare with a caller-supplied start floor.
func (d *Device) readSpare(ppn PPN, p Purpose, floor time.Duration) (SpareArea, bool, error) {
	addr := Decompose(ppn, d.cfg.PagesPerBlock)
	if err := d.checkPage(addr.Block, addr.Offset); err != nil {
		return SpareArea{}, false, err
	}
	die := d.die(addr.Block)
	die.mu.Lock()
	defer die.mu.Unlock()
	blk := &d.blocks[addr.Block]
	d.record(die, OpSpareRead, p, d.cfg.Latency.SpareRead, floor)
	if addr.Offset >= blk.writePointer {
		return SpareArea{}, false, nil
	}
	if blk.bad != nil && blk.bad[addr.Offset] {
		// Pages whose program failed report as unprogrammed, so recovery
		// scans skip them instead of trusting garbage.
		return SpareArea{}, false, nil
	}
	return blk.spares[addr.Offset], true, nil
}

// NoteTrim records a host trim (discard) of the page at ppn: the page's
// contents are no longer needed by the host and the FTL has marked them
// invalid. NAND has no trim primitive, so the record costs no device time; it
// exists so the invalidation counters can report how much invalid space the
// host supplied next to the IO the FTL spent on it (Counters, OpTrim). The
// page itself is untouched — only an erase of its block reclaims it.
func (d *Device) NoteTrim(ppn PPN, p Purpose) error {
	return d.noteTrim(ppn, p, 0)
}

// noteTrim is NoteTrim with a caller-supplied start floor (unused by the
// zero-cost record, kept for symmetry with the IO paths).
func (d *Device) noteTrim(ppn PPN, p Purpose, floor time.Duration) error {
	addr := Decompose(ppn, d.cfg.PagesPerBlock)
	if err := d.checkPage(addr.Block, addr.Offset); err != nil {
		return err
	}
	die := d.die(addr.Block)
	die.mu.Lock()
	defer die.mu.Unlock()
	d.record(die, OpTrim, p, 0, floor)
	return nil
}

// EraseBlock erases a block, freeing all of its pages.
func (d *Device) EraseBlock(block BlockID, p Purpose) error {
	return d.eraseBlock(block, p, 0)
}

// eraseBlock is EraseBlock with a caller-supplied start floor.
func (d *Device) eraseBlock(block BlockID, p Purpose, floor time.Duration) error {
	if err := d.check(block); err != nil {
		return err
	}
	die := d.die(block)
	die.mu.Lock()
	defer die.mu.Unlock()
	blk := &d.blocks[block]
	if d.cfg.MaxEraseCount > 0 && blk.eraseCount >= d.cfg.MaxEraseCount {
		// The budget check is controller bookkeeping (no pulse is issued),
		// but the attempt still retires the block: from here on BadBlock
		// reports it and no further program or erase will be accepted.
		blk.retired = true
		return fmt.Errorf("%w: block %d erased %d times", ErrWornOut, block, blk.eraseCount)
	}
	if blk.retired {
		return fmt.Errorf("%w: block %d retired", ErrEraseFailed, block)
	}
	if d.faults != nil && d.faults.fails(OpErase, d.opSeq[OpErase].Add(1), block, 0, blk.eraseCount) {
		// The erase pulse ran, failed, and cost full erase time. The block
		// becomes a grown bad block; its contents are untouched.
		blk.retired = true
		d.record(die, OpErase, p, d.cfg.Latency.Erase, floor)
		return fmt.Errorf("%w: block %d", ErrEraseFailed, block)
	}
	blk.eraseCount++
	blk.eraseSeq = d.eraseSeq.Add(1)
	blk.writePointer = 0
	blk.readCount = 0
	blk.bad = nil
	for i := range blk.spares {
		blk.spares[i] = SpareArea{}
	}
	d.record(die, OpErase, p, d.cfg.Latency.Erase, floor)
	return nil
}

// WritePointer returns the next free page offset of a block (equal to
// PagesPerBlock when the block is full). It models the FTL's own in-RAM
// knowledge of its active blocks and is not an IO.
func (d *Device) WritePointer(block BlockID) (int, error) {
	if err := d.check(block); err != nil {
		return 0, err
	}
	die := d.die(block)
	die.mu.Lock()
	defer die.mu.Unlock()
	return d.blocks[block].writePointer, nil
}

// EraseCount returns the number of erases a block has endured. Not an IO.
func (d *Device) EraseCount(block BlockID) (int, error) {
	if err := d.check(block); err != nil {
		return 0, err
	}
	die := d.die(block)
	die.mu.Lock()
	defer die.mu.Unlock()
	return d.blocks[block].eraseCount, nil
}

// ReadCount returns the number of full-page reads a block has absorbed since
// its last erase: the read-disturb accumulation the FTL's scrubber watches.
// It models the controller's per-block read counter and is not an IO.
func (d *Device) ReadCount(block BlockID) (int, error) {
	if err := d.check(block); err != nil {
		return 0, err
	}
	die := d.die(block)
	die.mu.Lock()
	defer die.mu.Unlock()
	return d.blocks[block].readCount, nil
}

// BadBlock reports whether a block has been retired (a failed erase, or an
// erase attempted past the block's budget). It models the controller's
// bad-block table — device truth that survives power failures — and is not
// an IO.
func (d *Device) BadBlock(block BlockID) (bool, error) {
	if err := d.check(block); err != nil {
		return false, err
	}
	die := d.die(block)
	die.mu.Lock()
	defer die.mu.Unlock()
	return d.blocks[block].retired, nil
}

// GlobalEraseSeq returns the device-wide erase counter. Not an IO.
func (d *Device) GlobalEraseSeq() uint64 { return d.eraseSeq.Load() }

// GlobalWriteSeq returns the device-wide write sequence number. Not an IO.
func (d *Device) GlobalWriteSeq() uint64 { return d.writeSeq.Load() }

// Counters returns a snapshot of the IO counters aggregated over all dies.
// With concurrent callers in flight the snapshot is per-die consistent but
// not a single global instant; quiesce the device for an exact total.
func (d *Device) Counters() Counters {
	return d.countersOverDies(0, len(d.dies))
}

// countersOverDies aggregates the counters of dies [lo, hi). Partitions use
// it to report only their own dies' IO.
func (d *Device) countersOverDies(lo, hi int) Counters {
	var total Counters
	for i := lo; i < hi; i++ {
		die := &d.dies[i]
		die.mu.Lock()
		total.Add(die.counters)
		die.mu.Unlock()
	}
	return total
}

// ResetCounters zeroes the IO counters of every die, typically after a
// warm-up phase so that steady-state write-amplification can be measured.
func (d *Device) ResetCounters() {
	d.resetCountersOverDies(0, len(d.dies))
}

// resetCountersOverDies zeroes the counters of dies [lo, hi).
func (d *Device) resetCountersOverDies(lo, hi int) {
	for i := lo; i < hi; i++ {
		die := &d.dies[i]
		die.mu.Lock()
		die.counters.Reset()
		die.mu.Unlock()
	}
}

// PowerFail simulates an abrupt power failure of the whole device: it
// refuses all operations until PowerOn is called. Flash contents survive;
// anything the FTL kept in integrated RAM does not (that loss is the FTL's
// concern). Partitions carved out of the device additionally have their own
// power domain (see Partition.PowerFail): device power is the shared rail
// underneath every partition domain.
func (d *Device) PowerFail() { d.powered.Store(false) }

// PowerOn restores power after a PowerFail. It restores only the device-wide
// rail; partitions whose own domain was failed stay dark until their own
// PowerOn.
func (d *Device) PowerOn() { d.powered.Store(true) }

// Powered reports whether the device currently has power.
func (d *Device) Powered() bool { return d.powered.Load() }

// SimulatedTime returns the total device time consumed so far under the
// latency model: the sum of every die's busy time, i.e. the cost of
// executing all IO on a single serialized plane.
func (d *Device) SimulatedTime() time.Duration {
	return d.timeOverDies(0, len(d.dies))
}

// timeOverDies sums the busy time of dies [lo, hi).
func (d *Device) timeOverDies(lo, hi int) time.Duration {
	var total time.Duration
	for i := lo; i < hi; i++ {
		die := &d.dies[i]
		die.mu.Lock()
		total += die.counters.Elapsed()
		die.mu.Unlock()
	}
	return total
}

// SyncArrival advances the device-wide arrival clock to the completion
// instant of all work issued so far (the latest die busy-until) and returns
// it. Callers that dispatch operations in rounds — the sharded ftl.Engine
// calls it once per batch, and once per single-page operation — use the
// returned instant as the round's arrival time: a subsequent operation's
// latency is its completion minus this arrival, which charges queueing
// behind earlier operations of the same round on the same die, but not idle
// time from before the round. The clock only moves forward.
func (d *Device) SyncArrival() time.Duration {
	now := d.BusyUntil()
	for {
		cur := d.arrival.Load()
		if int64(now) <= cur {
			return time.Duration(cur)
		}
		if d.arrival.CompareAndSwap(cur, int64(now)) {
			return now
		}
	}
}

// AdvanceArrival ratchets the device-wide arrival clock forward to at least
// t (never backward). Open-loop drivers stamp a generated arrival instant
// with it before issuing IO; see Partition.AdvanceArrival.
func (d *Device) AdvanceArrival(t time.Duration) {
	for {
		cur := d.arrival.Load()
		if int64(t) <= cur {
			return
		}
		if d.arrival.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

// BusyUntil returns the instant on the virtual timeline at which the last
// operation issued to any die completes, floored at the arrival clock (so an
// idle device reports the current virtual now rather than a stale
// completion).
func (d *Device) BusyUntil() time.Duration {
	return d.busyUntilOverDies(0, len(d.dies))
}

// busyUntilOverDies returns the latest busy-until instant of dies [lo, hi),
// floored at the arrival clock.
func (d *Device) busyUntilOverDies(lo, hi int) time.Duration {
	max := time.Duration(d.arrival.Load())
	for i := lo; i < hi; i++ {
		die := &d.dies[i]
		die.mu.Lock()
		if die.busyUntil > max {
			max = die.busyUntil
		}
		die.mu.Unlock()
	}
	return max
}

// ParallelSimulatedTime returns the busy time of the busiest die: the
// wall-clock lower bound for a controller that overlaps independent dies
// perfectly. On a 1x1 topology it equals SimulatedTime.
func (d *Device) ParallelSimulatedTime() time.Duration {
	var max time.Duration
	for i := range d.dies {
		die := &d.dies[i]
		die.mu.Lock()
		if t := die.counters.Elapsed(); t > max {
			max = t
		}
		die.mu.Unlock()
	}
	return max
}

// DieTimes returns each die's accumulated busy time, indexed by die. The
// channel-sweep experiments use it to report load balance.
func (d *Device) DieTimes() []time.Duration {
	out := make([]time.Duration, len(d.dies))
	for i := range d.dies {
		die := &d.dies[i]
		die.mu.Lock()
		out[i] = die.counters.Elapsed()
		die.mu.Unlock()
	}
	return out
}

// BlocksEndurance returns min, max and mean erase counts across all blocks.
// The wear-leveling tests use it to bound erase-count discrepancies.
func (d *Device) BlocksEndurance() (min, max int, mean float64) {
	return d.enduranceRange(0, d.cfg.Blocks)
}

// enduranceRange computes erase-count statistics over the block range
// [base, base+n), locking each die once.
func (d *Device) enduranceRange(base BlockID, n int) (min, max int, mean float64) {
	if n <= 0 {
		return 0, 0, 0
	}
	first := true
	var total int64
	lastDie := d.cfg.DieOfBlock(base + BlockID(n) - 1)
	for dieID := d.cfg.DieOfBlock(base); dieID <= lastDie; dieID++ {
		lo, hi := d.cfg.DieBlockRange(dieID)
		if lo < base {
			lo = base
		}
		if limit := base + BlockID(n); hi > limit {
			hi = limit
		}
		die := &d.dies[dieID]
		die.mu.Lock()
		for b := lo; b < hi; b++ {
			ec := d.blocks[b].eraseCount
			if first || ec < min {
				min = ec
			}
			if first || ec > max {
				max = ec
			}
			first = false
			total += int64(ec)
		}
		die.mu.Unlock()
	}
	return min, max, float64(total) / float64(n)
}
