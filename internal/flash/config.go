package flash

import (
	"fmt"
	"time"
)

// Default architectural parameters used throughout the paper's evaluation
// (Section 5, "Default Configuration"): 4 KB pages, 128 pages per block,
// 70% logical-to-physical ratio, a 10x write/read latency asymmetry.
const (
	DefaultPageSize      = 4 * 1024
	DefaultPagesPerBlock = 128
	DefaultOverProvision = 0.70
	// DefaultSpareDivisor is the factor by which a spare area is smaller
	// than its page (Micron TN-29-07, cited as [1] in the paper).
	DefaultSpareDivisor = 32
)

// Default latencies, following Grupp et al. (FAST'12) as cited by the paper:
// a page read takes ~100us, a page write ~1ms, a spare-area read ~3us
// (a page read divided by the spare divisor), and a block erase ~2ms.
const (
	DefaultPageReadLatency  = 100 * time.Microsecond
	DefaultPageWriteLatency = 1 * time.Millisecond
	DefaultSpareReadLatency = 3 * time.Microsecond
	DefaultEraseLatency     = 2 * time.Millisecond
)

// Latency holds the cost model of the simulated device. All recovery-time and
// throughput figures are derived from these constants; write-amplification is
// derived from IO counts alone.
type Latency struct {
	PageRead  time.Duration
	PageWrite time.Duration
	SpareRead time.Duration
	Erase     time.Duration
}

// DefaultLatency returns the latency model used by the paper's evaluation.
func DefaultLatency() Latency {
	return Latency{
		PageRead:  DefaultPageReadLatency,
		PageWrite: DefaultPageWriteLatency,
		SpareRead: DefaultSpareReadLatency,
		Erase:     DefaultEraseLatency,
	}
}

// WriteReadRatio returns delta, the ratio between the cost of a page write
// and a page read. The paper's default configuration sets delta = 10.
func (l Latency) WriteReadRatio() float64 {
	if l.PageRead <= 0 {
		return 0
	}
	return float64(l.PageWrite) / float64(l.PageRead)
}

// Config describes the geometry and cost model of a simulated flash device.
type Config struct {
	// Blocks is K, the number of flash blocks in the device.
	Blocks int
	// PagesPerBlock is B, the number of pages per block.
	PagesPerBlock int
	// PageSize is P, the size of a flash page in bytes.
	PageSize int
	// OverProvision is R, the ratio of logical capacity to physical
	// capacity (0 < R < 1). The logical address space exposed to the
	// application contains floor(R*K*B) pages.
	OverProvision float64
	// Latency is the device cost model.
	Latency Latency
	// MaxEraseCount, if non-zero, is the number of erases after which a
	// block is considered worn out. Erasing a worn-out block returns
	// ErrWornOut. Zero means unlimited.
	MaxEraseCount int
	// StrictSequentialWrites enforces that pages within a block are
	// written in strictly increasing offset order, as required by modern
	// NAND (idiosyncrasy 4 in Section 2 of the paper).
	StrictSequentialWrites bool
	// Channels is the number of independent flash channels. Zero means one:
	// the paper's single serialized plane.
	Channels int
	// DiesPerChannel is the number of dies ganged on each channel. Zero
	// means one. Operations on distinct dies proceed in parallel;
	// operations on the same die serialize (per-die busy latching).
	DiesPerChannel int
}

// DefaultConfig returns the paper's default 2 TB configuration:
// K = 2^22 blocks, B = 2^7 pages per block, P = 2^12 bytes per page, R = 0.7.
// Most simulations in this repository use ScaledConfig instead because the
// full 2 TB geometry needs several hundred megabytes of simulator state.
func DefaultConfig() Config {
	return Config{
		Blocks:                 1 << 22,
		PagesPerBlock:          DefaultPagesPerBlock,
		PageSize:               DefaultPageSize,
		OverProvision:          DefaultOverProvision,
		Latency:                DefaultLatency(),
		StrictSequentialWrites: true,
	}
}

// ScaledConfig returns a configuration with the paper's default page size,
// block size, over-provisioning and latencies but with only the given number
// of blocks. It is the workhorse configuration for simulation experiments.
func ScaledConfig(blocks int) Config {
	cfg := DefaultConfig()
	cfg.Blocks = blocks
	return cfg
}

// Validate checks that the configuration describes a realizable device.
func (c Config) Validate() error {
	switch {
	case c.Blocks <= 0:
		return fmt.Errorf("flash: config has %d blocks, need > 0", c.Blocks)
	case c.PagesPerBlock <= 0:
		return fmt.Errorf("flash: config has %d pages per block, need > 0", c.PagesPerBlock)
	case c.PageSize <= 0:
		return fmt.Errorf("flash: config has page size %d, need > 0", c.PageSize)
	case c.OverProvision <= 0 || c.OverProvision >= 1:
		return fmt.Errorf("flash: over-provision ratio %.3f out of range (0,1)", c.OverProvision)
	case c.Latency.PageRead <= 0 || c.Latency.PageWrite <= 0 || c.Latency.SpareRead <= 0 || c.Latency.Erase <= 0:
		return fmt.Errorf("flash: all latencies must be positive: %+v", c.Latency)
	case c.MaxEraseCount < 0:
		return fmt.Errorf("flash: max erase count %d must be >= 0", c.MaxEraseCount)
	case c.Channels < 0 || c.DiesPerChannel < 0:
		return fmt.Errorf("flash: channels %d and dies per channel %d must be >= 0", c.Channels, c.DiesPerChannel)
	case c.Dies() > c.Blocks:
		return fmt.Errorf("flash: %d dies need at least as many blocks, have %d", c.Dies(), c.Blocks)
	}
	return nil
}

// PhysicalPages returns the total number of physical pages K*B.
func (c Config) PhysicalPages() int { return c.Blocks * c.PagesPerBlock }

// LogicalPages returns the number of logical pages exposed to the
// application: floor(R * K * B).
func (c Config) LogicalPages() int {
	return int(c.OverProvision * float64(c.PhysicalPages()))
}

// PhysicalBytes returns the raw capacity of the device in bytes.
func (c Config) PhysicalBytes() int64 {
	return int64(c.Blocks) * int64(c.PagesPerBlock) * int64(c.PageSize)
}

// LogicalBytes returns the capacity exposed to the application in bytes.
func (c Config) LogicalBytes() int64 {
	return int64(c.LogicalPages()) * int64(c.PageSize)
}

// SpareSize returns the size of a page's spare area in bytes.
func (c Config) SpareSize() int { return c.PageSize / DefaultSpareDivisor }

// String summarizes the geometry, e.g. "flash(K=65536 B=128 P=4096 R=0.70)";
// multi-die devices append the topology as "CxD" (channels x dies each).
func (c Config) String() string {
	s := fmt.Sprintf("flash(K=%d B=%d P=%d R=%.2f", c.Blocks, c.PagesPerBlock, c.PageSize, c.OverProvision)
	if c.Dies() > 1 {
		s += fmt.Sprintf(" T=%dx%d", c.channels(), c.diesPerChannel())
	}
	return s + ")"
}
