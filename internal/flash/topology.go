package flash

import (
	"fmt"
	"sync/atomic"
	"time"
)

// channels returns the configured channel count, treating zero as one.
func (c Config) channels() int {
	if c.Channels <= 0 {
		return 1
	}
	return c.Channels
}

// diesPerChannel returns the configured dies per channel, treating zero as one.
func (c Config) diesPerChannel() int {
	if c.DiesPerChannel <= 0 {
		return 1
	}
	return c.DiesPerChannel
}

// Dies returns the total number of independently operating dies,
// Channels * DiesPerChannel (each defaulting to one when zero).
func (c Config) Dies() int { return c.channels() * c.diesPerChannel() }

// NumChannels returns the channel count, treating zero as one. (A method
// because the Channels field keeps zero as "unset" for backward
// compatibility with single-plane configurations.)
func (c Config) NumChannels() int { return c.channels() }

// DieOfBlock returns the die a block resides on. Blocks are laid out across
// dies in contiguous ranges, so a contiguous block range [lo,hi) aligned to
// die boundaries touches only its own dies — the property the ftl.Engine uses
// to give each shard a contention-free set of dies.
func (c Config) DieOfBlock(block BlockID) int {
	return int(int64(block) * int64(c.Dies()) / int64(c.Blocks))
}

// ChannelOfBlock returns the channel whose bus serves the block's die.
func (c Config) ChannelOfBlock(block BlockID) int {
	return c.DieOfBlock(block) / c.diesPerChannel()
}

// DieBlockRange returns the half-open block range [lo,hi) owned by a die.
func (c Config) DieBlockRange(die int) (lo, hi BlockID) {
	d, k := int64(c.Dies()), int64(c.Blocks)
	lo = BlockID((int64(die)*k + d - 1) / d)
	hi = BlockID((int64(die+1)*k + d - 1) / d)
	return lo, hi
}

// ChannelBlockRange returns the half-open block range [lo,hi) served by a
// channel: the union of its dies' ranges.
func (c Config) ChannelBlockRange(channel int) (lo, hi BlockID) {
	lo, _ = c.DieBlockRange(channel * c.diesPerChannel())
	_, hi = c.DieBlockRange((channel+1)*c.diesPerChannel() - 1)
	return lo, hi
}

// Plane is the device interface the FTLs program against. Both the whole
// *Device and a *Partition (a contiguous block range of a device) implement
// it, which is how the sharded ftl.Engine runs an unmodified FTL per channel.
type Plane interface {
	// Config describes the plane's geometry: for a partition, Blocks is the
	// partition's block count and addresses are partition-relative.
	Config() Config
	WritePage(ppn PPN, spare SpareArea, p Purpose) (uint64, error)
	ReadPage(ppn PPN, p Purpose) error
	ReadSpare(ppn PPN, p Purpose) (SpareArea, bool, error)
	EraseBlock(block BlockID, p Purpose) error
	// NoteTrim records a host trim of the page at ppn in the invalidation
	// counters (OpTrim). It is a zero-latency accounting event, not an IO.
	NoteTrim(ppn PPN, p Purpose) error
	WritePointer(block BlockID) (int, error)
	EraseCount(block BlockID) (int, error)
	// ReadCount returns the full-page reads a block has absorbed since its
	// last erase (the read-disturb accumulation the scrubber watches), and
	// BadBlock whether the block has been retired as a grown bad block.
	// Both model controller bookkeeping (read counters, the bad-block
	// table), like WritePointer and EraseCount, and are not IO.
	ReadCount(block BlockID) (int, error)
	BadBlock(block BlockID) (bool, error)
	BlocksEndurance() (min, max int, mean float64)
	// Counters, SimulatedTime and ResetCounters report and reset the IO
	// accounting of the underlying device. For a partition they are scoped
	// to the dies its block range touches, so concurrent shards account (and
	// time) their IO independently; the scoping is exact when partitions are
	// die-aligned (the sharded ftl.Engine rounds its shards to die
	// boundaries whenever the geometry allows), and approximate — neighbors
	// on a shared die bleed into each other's numbers — otherwise.
	Counters() Counters
	SimulatedTime() time.Duration
	ResetCounters()
	// BusyUntil returns the virtual-timeline instant at which the plane's
	// most recently issued operation completes (scoped to the partition's
	// dies for a *Partition, floored at the plane's arrival clock). The
	// latency instrumentation subtracts a round's arrival instant
	// (SyncArrival) from it to obtain per-operation service times that
	// include queueing behind the die.
	BusyUntil() time.Duration
	// SyncArrival advances the plane's arrival clock to BusyUntil and
	// returns it: subsequent operations on the plane start no earlier than
	// this instant. For a *Device the clock is device-wide; for a
	// *Partition it is the partition's own, so concurrent shards' arrival
	// stamps never interfere with (or lock) each other's dies.
	SyncArrival() time.Duration
	// AdvanceArrival ratchets the plane's arrival clock forward to at least
	// t (never backward): subsequent operations start no earlier than t.
	// Open-loop drivers use it to stamp an operation's generated arrival
	// instant before issuing it, so an op that reaches an idle plane still
	// starts at its arrival time rather than at the plane's last completion.
	AdvanceArrival(t time.Duration)
	// PowerFail, PowerOn and Powered operate on the plane's own power
	// domain: the whole device for a *Device, the partition's domain for a
	// *Partition. Partitions of one device fail and recover independently.
	PowerFail()
	PowerOn()
	Powered() bool
}

var (
	_ Plane = (*Device)(nil)
	_ Plane = (*Partition)(nil)
)

// Partition is a view over a contiguous block range of a Device. Block IDs
// and physical page numbers are partition-relative: block 0 of the partition
// is block base of the device. IO issued through a partition is executed,
// latched and accounted by the parent device, so partitions on different dies
// run in parallel while partitions sharing a die serialize.
//
// Each partition is its own power domain: Partition.PowerFail cuts only the
// partition, and Partition.PowerOn restores only the partition, so shards of
// one device crash and recover independently. The device-wide power rail
// (Device.PowerFail) sits underneath every domain: while it is down, no
// partition is powered regardless of its own domain state.
type Partition struct {
	dev  *Device
	base BlockID
	cfg  Config
	// loDie and hiDie bound the dies the partition's blocks touch; counters
	// and simulated time are scoped to this half-open range.
	loDie, hiDie int
	powered      atomic.Bool
	// arrival is the partition's own arrival clock in nanoseconds: IO issued
	// through the partition starts no earlier than it (on top of the
	// device-wide arrival clock). SyncArrival ratchets it to the partition's
	// completion instant, which keeps an operation that lands on an idle die
	// of a multi-die partition from starting before the partition's previous
	// operation completed — and its measured latency honest.
	arrival atomic.Int64
}

// Partition carves the block range [base, base+blocks) out of the device.
// The returned view has the parent's geometry and cost model but only the
// given blocks (and proportionally fewer logical pages). The range is not
// reserved: nothing stops other partitions or direct device access from
// overlapping it; callers that shard a device are responsible for using
// disjoint ranges.
func (d *Device) Partition(base BlockID, blocks int) (*Partition, error) {
	if base < 0 || blocks <= 0 || int(base)+blocks > d.cfg.Blocks {
		return nil, fmt.Errorf("%w: partition [%d,%d) of %d blocks", ErrOutOfRange, base, int(base)+blocks, d.cfg.Blocks)
	}
	cfg := d.cfg
	cfg.Blocks = blocks
	// The partition spans a subset of the device's dies; its own view is a
	// single plane, so the topology fields are cleared.
	cfg.Channels = 0
	cfg.DiesPerChannel = 0
	p := &Partition{
		dev:   d,
		base:  base,
		cfg:   cfg,
		loDie: d.cfg.DieOfBlock(base),
		hiDie: d.cfg.DieOfBlock(base+BlockID(blocks)-1) + 1,
	}
	p.powered.Store(true)
	return p, nil
}

// Config returns the partition-relative configuration.
func (p *Partition) Config() Config { return p.cfg }

// Base returns the first device block of the partition.
func (p *Partition) Base() BlockID { return p.base }

// Device returns the parent device.
func (p *Partition) Device() *Device { return p.dev }

// checkBlock bounds-checks a partition-relative block ID before translation,
// so a buggy caller cannot reach a neighboring partition's blocks, and
// enforces the partition's power domain (the parent device enforces the
// shared rail itself).
func (p *Partition) checkBlock(block BlockID) error {
	if !p.powered.Load() {
		return ErrPowerFailed
	}
	if block < 0 || int(block) >= p.cfg.Blocks {
		return fmt.Errorf("%w: block %d of partition with %d blocks", ErrOutOfRange, block, p.cfg.Blocks)
	}
	return nil
}

// checkPPN bounds-checks a partition-relative page number before translation
// and enforces the partition's power domain.
func (p *Partition) checkPPN(ppn PPN) error {
	if !p.powered.Load() {
		return ErrPowerFailed
	}
	if ppn < 0 || int64(ppn) >= int64(p.cfg.Blocks)*int64(p.cfg.PagesPerBlock) {
		return fmt.Errorf("%w: page %d of partition with %d pages", ErrOutOfRange, ppn, int64(p.cfg.Blocks)*int64(p.cfg.PagesPerBlock))
	}
	return nil
}

// ppnOffset is the device page number of the partition's page 0.
func (p *Partition) ppnOffset() PPN {
	return PPN(int64(p.base) * int64(p.cfg.PagesPerBlock))
}

// WritePage programs the partition-relative page ppn on the parent device.
func (p *Partition) WritePage(ppn PPN, spare SpareArea, pu Purpose) (uint64, error) {
	if err := p.checkPPN(ppn); err != nil {
		return 0, err
	}
	return p.dev.writePage(ppn+p.ppnOffset(), spare, pu, p.floor())
}

// ReadPage reads the partition-relative page ppn.
func (p *Partition) ReadPage(ppn PPN, pu Purpose) error {
	if err := p.checkPPN(ppn); err != nil {
		return err
	}
	return p.dev.readPage(ppn+p.ppnOffset(), pu, p.floor())
}

// ReadSpare reads the spare area of the partition-relative page ppn.
func (p *Partition) ReadSpare(ppn PPN, pu Purpose) (SpareArea, bool, error) {
	if err := p.checkPPN(ppn); err != nil {
		return SpareArea{}, false, err
	}
	return p.dev.readSpare(ppn+p.ppnOffset(), pu, p.floor())
}

// NoteTrim records a host trim of the partition-relative page ppn.
func (p *Partition) NoteTrim(ppn PPN, pu Purpose) error {
	if err := p.checkPPN(ppn); err != nil {
		return err
	}
	return p.dev.noteTrim(ppn+p.ppnOffset(), pu, p.floor())
}

// EraseBlock erases the partition-relative block.
func (p *Partition) EraseBlock(block BlockID, pu Purpose) error {
	if err := p.checkBlock(block); err != nil {
		return err
	}
	return p.dev.eraseBlock(block+p.base, pu, p.floor())
}

// WritePointer returns the write pointer of the partition-relative block.
func (p *Partition) WritePointer(block BlockID) (int, error) {
	if err := p.checkBlock(block); err != nil {
		return 0, err
	}
	return p.dev.WritePointer(block + p.base)
}

// EraseCount returns the erase count of the partition-relative block.
func (p *Partition) EraseCount(block BlockID) (int, error) {
	if err := p.checkBlock(block); err != nil {
		return 0, err
	}
	return p.dev.EraseCount(block + p.base)
}

// ReadCount returns the read-disturb count of the partition-relative block.
func (p *Partition) ReadCount(block BlockID) (int, error) {
	if err := p.checkBlock(block); err != nil {
		return 0, err
	}
	return p.dev.ReadCount(block + p.base)
}

// BadBlock reports whether the partition-relative block has been retired.
func (p *Partition) BadBlock(block BlockID) (bool, error) {
	if err := p.checkBlock(block); err != nil {
		return false, err
	}
	return p.dev.BadBlock(block + p.base)
}

// BlocksEndurance returns min, max and mean erase counts over the
// partition's blocks only.
func (p *Partition) BlocksEndurance() (min, max int, mean float64) {
	return p.dev.enduranceRange(p.base, p.cfg.Blocks)
}

// Counters returns the IO counters of the dies the partition's blocks touch.
// For a die-aligned partition (as the sharded ftl.Engine creates) this is
// exactly the partition's own IO; a partition sharing a die with a neighbor
// also sees the neighbor's IO on that die.
func (p *Partition) Counters() Counters { return p.dev.countersOverDies(p.loDie, p.hiDie) }

// SimulatedTime returns the summed busy time of the partition's dies: the
// critical path of a shard that drives its dies synchronously. Concurrent
// shards on other dies do not contribute.
func (p *Partition) SimulatedTime() time.Duration { return p.dev.timeOverDies(p.loDie, p.hiDie) }

// ResetCounters resets the counters of the partition's dies only.
func (p *Partition) ResetCounters() { p.dev.resetCountersOverDies(p.loDie, p.hiDie) }

// floor returns the partition's arrival clock, the earliest instant IO
// issued through the partition may start.
func (p *Partition) floor() time.Duration { return time.Duration(p.arrival.Load()) }

// BusyUntil returns the completion instant of the last operation issued to
// the partition's dies, floored at the device-wide and partition arrival
// clocks. For a die-aligned partition driven serially (an engine shard)
// this is exactly the completion time of the shard's most recent operation.
func (p *Partition) BusyUntil() time.Duration {
	max := p.dev.busyUntilOverDies(p.loDie, p.hiDie)
	if f := p.floor(); f > max {
		max = f
	}
	return max
}

// SyncArrival advances the partition's own arrival clock to its completion
// instant and returns it. Unlike Device.SyncArrival it touches only the
// partition's dies, so concurrent shards never contend here.
func (p *Partition) SyncArrival() time.Duration {
	now := p.BusyUntil()
	for {
		cur := p.arrival.Load()
		if int64(now) <= cur {
			return time.Duration(cur)
		}
		if p.arrival.CompareAndSwap(cur, int64(now)) {
			return now
		}
	}
}

// AdvanceArrival ratchets the partition's arrival clock forward to at least
// t. Unlike SyncArrival it does not consult the dies: the caller names the
// arrival instant (an open-loop generator's stamp), and IO issued afterwards
// starts no earlier than it even on an idle die.
func (p *Partition) AdvanceArrival(t time.Duration) {
	for {
		cur := p.arrival.Load()
		if int64(t) <= cur {
			return
		}
		if p.arrival.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

// PowerFail fails power on the partition's own domain: the partition refuses
// all operations until its own PowerOn, while sibling partitions and the
// parent device keep running. (An engine-wide crash also drops the shared
// rail via Device.PowerFail.)
func (p *Partition) PowerFail() { p.powered.Store(false) }

// PowerOn restores the partition's own power domain after a PowerFail. It
// does not touch the shared device rail: if the whole device was failed, the
// partition stays unpowered until Device.PowerOn.
func (p *Partition) PowerOn() { p.powered.Store(true) }

// Powered reports whether the partition has power: its own domain must be up
// and the parent device's shared rail must be up.
func (p *Partition) Powered() bool { return p.powered.Load() && p.dev.Powered() }
