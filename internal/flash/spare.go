package flash

import (
	"encoding/binary"
	"fmt"
)

// BlockType records what kind of data a block holds. The FTL writes the type
// into the spare area of the first page it programs in a block so that the
// recovery procedure can classify blocks with one spare-area read per block
// (GeckoRec step 1, Appendix C).
type BlockType uint8

const (
	// BlockFree is a block with no programmed pages.
	BlockFree BlockType = iota
	// BlockUser holds application data pages.
	BlockUser
	// BlockTranslation holds translation pages (the flash-resident
	// translation table).
	BlockTranslation
	// BlockGecko holds Logarithmic Gecko runs or other flash-resident
	// page-validity metadata (flash PVB pages, PVL pages).
	BlockGecko
)

var blockTypeNames = [...]string{
	BlockFree:        "free",
	BlockUser:        "user",
	BlockTranslation: "translation",
	BlockGecko:       "gecko",
}

// String returns the block type name.
func (t BlockType) String() string {
	if int(t) < len(blockTypeNames) {
		return blockTypeNames[t]
	}
	return "invalid"
}

// SpareArea models the out-of-band area adjacent to every flash page. It can
// be written exactly once per page life-cycle (together with the page
// program) and read on its own at a fraction of a page read's cost.
//
// The fields mirror what the paper stores there: the logical address written
// on the page, a monotonically increasing write timestamp, the block type (on
// the first page of a block), and wear-leveling statistics (Appendix D).
type SpareArea struct {
	// Logical is the logical page stored on this physical page, or
	// InvalidLPN for metadata pages.
	Logical LPN
	// WriteSeq is the device-wide sequence number of the page program.
	// It acts as the "timestamp of when the page was last written".
	WriteSeq uint64
	// BlockType is meaningful only on the first page programmed in a
	// block; it records the block group the block was allocated to.
	BlockType BlockType
	// EraseCount is the number of times this page's block had been erased
	// when the page was written (wear-leveling statistic, Appendix D).
	EraseCount uint32
	// EraseSeq is the global erase counter value when this page's block
	// was last erased (the block's erase-timestamp, Appendix D).
	EraseSeq uint64
	// Tag is free-form metadata for FTL-specific bookkeeping: run IDs for
	// Logarithmic Gecko pages, translation-page indexes for translation
	// pages, log sequence numbers for the page validity log.
	Tag uint64
	// Aux is a second free-form metadata slot (e.g. run level, or the
	// content-sequence stamp of the public device API).
	Aux uint64
}

// SpareEncodedSize is the byte length of a marshalled SpareArea: the fixed
// little-endian layout below, sized to fit real NAND out-of-band areas
// (64-224 bytes per page) with room for ECC.
const SpareEncodedSize = 8 + 8 + 1 + 4 + 8 + 8 + 8

// MarshalBinary encodes the spare area into its fixed 45-byte on-flash
// layout: Logical, WriteSeq, BlockType, EraseCount, EraseSeq, Tag, Aux, all
// little-endian. It never fails; the error return satisfies
// encoding.BinaryMarshaler.
func (s SpareArea) MarshalBinary() ([]byte, error) {
	buf := make([]byte, SpareEncodedSize)
	binary.LittleEndian.PutUint64(buf[0:], uint64(s.Logical))
	binary.LittleEndian.PutUint64(buf[8:], s.WriteSeq)
	buf[16] = byte(s.BlockType)
	binary.LittleEndian.PutUint32(buf[17:], s.EraseCount)
	binary.LittleEndian.PutUint64(buf[21:], s.EraseSeq)
	binary.LittleEndian.PutUint64(buf[29:], s.Tag)
	binary.LittleEndian.PutUint64(buf[37:], s.Aux)
	return buf, nil
}

// UnmarshalBinary decodes the fixed layout written by MarshalBinary. It
// rejects data of the wrong length and undefined block types, so a corrupted
// spare area fails loudly instead of classifying a block as garbage.
func (s *SpareArea) UnmarshalBinary(data []byte) error {
	if len(data) != SpareEncodedSize {
		return fmt.Errorf("flash: spare area is %d bytes, want %d", len(data), SpareEncodedSize)
	}
	if t := BlockType(data[16]); int(t) >= len(blockTypeNames) {
		return fmt.Errorf("flash: spare area names undefined block type %d", data[16])
	}
	*s = SpareArea{
		Logical:    LPN(binary.LittleEndian.Uint64(data[0:])),
		WriteSeq:   binary.LittleEndian.Uint64(data[8:]),
		BlockType:  BlockType(data[16]),
		EraseCount: binary.LittleEndian.Uint32(data[17:]),
		EraseSeq:   binary.LittleEndian.Uint64(data[21:]),
		Tag:        binary.LittleEndian.Uint64(data[29:]),
		Aux:        binary.LittleEndian.Uint64(data[37:]),
	}
	return nil
}
