package flash

// BlockType records what kind of data a block holds. The FTL writes the type
// into the spare area of the first page it programs in a block so that the
// recovery procedure can classify blocks with one spare-area read per block
// (GeckoRec step 1, Appendix C).
type BlockType uint8

const (
	// BlockFree is a block with no programmed pages.
	BlockFree BlockType = iota
	// BlockUser holds application data pages.
	BlockUser
	// BlockTranslation holds translation pages (the flash-resident
	// translation table).
	BlockTranslation
	// BlockGecko holds Logarithmic Gecko runs or other flash-resident
	// page-validity metadata (flash PVB pages, PVL pages).
	BlockGecko
)

var blockTypeNames = [...]string{
	BlockFree:        "free",
	BlockUser:        "user",
	BlockTranslation: "translation",
	BlockGecko:       "gecko",
}

// String returns the block type name.
func (t BlockType) String() string {
	if int(t) < len(blockTypeNames) {
		return blockTypeNames[t]
	}
	return "invalid"
}

// SpareArea models the out-of-band area adjacent to every flash page. It can
// be written exactly once per page life-cycle (together with the page
// program) and read on its own at a fraction of a page read's cost.
//
// The fields mirror what the paper stores there: the logical address written
// on the page, a monotonically increasing write timestamp, the block type (on
// the first page of a block), and wear-leveling statistics (Appendix D).
type SpareArea struct {
	// Logical is the logical page stored on this physical page, or
	// InvalidLPN for metadata pages.
	Logical LPN
	// WriteSeq is the device-wide sequence number of the page program.
	// It acts as the "timestamp of when the page was last written".
	WriteSeq uint64
	// BlockType is meaningful only on the first page programmed in a
	// block; it records the block group the block was allocated to.
	BlockType BlockType
	// EraseCount is the number of times this page's block had been erased
	// when the page was written (wear-leveling statistic, Appendix D).
	EraseCount uint32
	// EraseSeq is the global erase counter value when this page's block
	// was last erased (the block's erase-timestamp, Appendix D).
	EraseSeq uint64
	// Tag is free-form metadata for FTL-specific bookkeeping: run IDs for
	// Logarithmic Gecko pages, translation-page indexes for translation
	// pages, log sequence numbers for the page validity log.
	Tag uint64
	// Aux is a second free-form metadata slot (e.g. run level).
	Aux uint64
}
