package flash

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Purpose labels the FTL component on whose behalf an internal IO was issued.
// The evaluation section of the paper breaks write-amplification down by
// these purposes (Figure 13 bottom, Figure 14), so every device operation
// must carry one.
type Purpose int

const (
	// PurposeUnknown is used when the caller does not attribute the IO.
	PurposeUnknown Purpose = iota
	// PurposeUserWrite is an application write of user data.
	PurposeUserWrite
	// PurposeUserRead is an application read of user data.
	PurposeUserRead
	// PurposeGCMigration is a copy of a still-valid page out of a
	// garbage-collection victim block.
	PurposeGCMigration
	// PurposeGCErase is the erase of a victim block.
	PurposeGCErase
	// PurposeTranslation covers reads and writes of translation pages
	// (synchronization operations and demand misses).
	PurposeTranslation
	// PurposePageValidity covers IO to page-validity metadata: the
	// flash-resident PVB, Logarithmic Gecko runs, or the page validity log.
	PurposePageValidity
	// PurposeRecovery covers IO performed while recovering from a power
	// failure.
	PurposeRecovery
	// PurposeWearLeveling covers the background spare-area scans and
	// migrations of the wear-leveler.
	PurposeWearLeveling
	// PurposeTrim covers work done on behalf of host trim (discard)
	// commands: the zero-latency invalidation records themselves (OpTrim)
	// and any translation reads a trim needs to identify its before-image.
	PurposeTrim
	numPurposes
)

var purposeNames = [...]string{
	PurposeUnknown:      "unknown",
	PurposeUserWrite:    "user-write",
	PurposeUserRead:     "user-read",
	PurposeGCMigration:  "gc-migration",
	PurposeGCErase:      "gc-erase",
	PurposeTranslation:  "translation",
	PurposePageValidity: "page-validity",
	PurposeRecovery:     "recovery",
	PurposeWearLeveling: "wear-leveling",
	PurposeTrim:         "trim",
}

// String returns a stable, human-readable name for the purpose.
func (p Purpose) String() string {
	if p < 0 || int(p) >= len(purposeNames) {
		return fmt.Sprintf("purpose(%d)", int(p))
	}
	return purposeNames[p]
}

// Purposes returns all defined purposes in declaration order.
func Purposes() []Purpose {
	out := make([]Purpose, 0, numPurposes)
	for p := Purpose(0); p < numPurposes; p++ {
		out = append(out, p)
	}
	return out
}

// Op identifies the kind of device operation being counted.
type Op int

const (
	// OpPageRead is a full page read.
	OpPageRead Op = iota
	// OpPageWrite is a full page program.
	OpPageWrite
	// OpSpareRead is a read of a page's spare area only.
	OpSpareRead
	// OpErase is a block erase.
	OpErase
	// OpTrim is a host-initiated page invalidation (trim/discard). It is an
	// accounting event, not an IO: NAND has no trim primitive, so the record
	// carries zero latency. The counters keep it so experiments can report
	// how much invalid space the host supplied for free, next to the IO the
	// garbage collector would otherwise have spent discovering it.
	OpTrim
	numOps
)

var opNames = [...]string{
	OpPageRead:  "page-read",
	OpPageWrite: "page-write",
	OpSpareRead: "spare-read",
	OpErase:     "erase",
	OpTrim:      "trim",
}

// String returns a stable, human-readable name for the operation.
func (o Op) String() string {
	if o < 0 || int(o) >= len(opNames) {
		return fmt.Sprintf("op(%d)", int(o))
	}
	return opNames[o]
}

// Counters accumulates per-(operation, purpose) IO counts and the simulated
// time spent on them. It is not safe for concurrent use; the device guards it
// with its own mutex.
type Counters struct {
	counts  [numOps][numPurposes]int64
	elapsed time.Duration
}

// Record adds a single operation with the given purpose and latency.
func (c *Counters) Record(op Op, p Purpose, cost time.Duration) {
	if p < 0 || p >= numPurposes {
		p = PurposeUnknown
	}
	c.counts[op][p]++
	c.elapsed += cost
}

// Count returns the number of operations of kind op issued for purpose p.
func (c *Counters) Count(op Op, p Purpose) int64 {
	if p < 0 || p >= numPurposes {
		return 0
	}
	return c.counts[op][p]
}

// TotalOp returns the number of operations of kind op across all purposes.
func (c *Counters) TotalOp(op Op) int64 {
	var total int64
	for p := Purpose(0); p < numPurposes; p++ {
		total += c.counts[op][p]
	}
	return total
}

// TotalPurpose returns the number of operations of kind op issued for p.
// It is a convenience alias of Count kept for readability at call sites.
func (c *Counters) TotalPurpose(op Op, p Purpose) int64 { return c.Count(op, p) }

// Elapsed returns the total simulated device time consumed.
func (c *Counters) Elapsed() time.Duration { return c.elapsed }

// Snapshot returns a copy of the counters.
func (c *Counters) Snapshot() Counters { return *c }

// Add accumulates other into c; the device uses it to aggregate per-die
// counters into a device-wide snapshot.
func (c *Counters) Add(other Counters) {
	for op := Op(0); op < numOps; op++ {
		for p := Purpose(0); p < numPurposes; p++ {
			c.counts[op][p] += other.counts[op][p]
		}
	}
	c.elapsed += other.elapsed
}

// Sub returns the difference c - prev, useful for measuring an interval.
func (c Counters) Sub(prev Counters) Counters {
	var out Counters
	for op := Op(0); op < numOps; op++ {
		for p := Purpose(0); p < numPurposes; p++ {
			out.counts[op][p] = c.counts[op][p] - prev.counts[op][p]
		}
	}
	out.elapsed = c.elapsed - prev.elapsed
	return out
}

// Reset zeroes all counters.
func (c *Counters) Reset() { *c = Counters{} }

// WriteAmplification computes the paper's write-amplification metric
//
//	WA = (i_writes + i_reads/delta) / logicalWrites
//
// where i_writes and i_reads are the internal page writes and page reads
// excluding the logical writes themselves... The paper folds the application's
// own page write into the count (WA >= 1 for any real workload), so this
// helper takes the raw internal totals and the caller decides what to include
// by passing counters restricted to the purposes of interest.
func (c Counters) WriteAmplification(logicalWrites int64, delta float64) float64 {
	if logicalWrites <= 0 {
		return 0
	}
	writes := float64(c.TotalOp(OpPageWrite))
	reads := float64(c.TotalOp(OpPageRead))
	if delta <= 0 {
		delta = 1
	}
	return (writes + reads/delta) / float64(logicalWrites)
}

// PurposeWriteAmplification computes the contribution of a single purpose to
// write-amplification: (writes(p) + reads(p)/delta) / logicalWrites.
func (c Counters) PurposeWriteAmplification(p Purpose, logicalWrites int64, delta float64) float64 {
	if logicalWrites <= 0 {
		return 0
	}
	if delta <= 0 {
		delta = 1
	}
	writes := float64(c.Count(OpPageWrite, p))
	reads := float64(c.Count(OpPageRead, p))
	return (writes + reads/delta) / float64(logicalWrites)
}

// String renders a compact multi-line table of non-zero counters.
func (c Counters) String() string {
	var b strings.Builder
	type row struct {
		op   Op
		p    Purpose
		n    int64
		text string
	}
	var rows []row
	for op := Op(0); op < numOps; op++ {
		for p := Purpose(0); p < numPurposes; p++ {
			if n := c.counts[op][p]; n != 0 {
				rows = append(rows, row{op, p, n, fmt.Sprintf("%s/%s=%d", op, p, n)})
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].op != rows[j].op {
			return rows[i].op < rows[j].op
		}
		return rows[i].p < rows[j].p
	})
	for i, r := range rows {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(r.text)
	}
	if b.Len() == 0 {
		return "no-io"
	}
	return b.String()
}
