package pvb

import (
	"fmt"

	"geckoftl/internal/bitmap"
	"geckoftl/internal/flash"
	"geckoftl/internal/metastore"
)

// Store is the common interface of page-validity metadata stores: the
// RAM-resident PVB, the flash-resident PVB, the IB-FTL page validity log and
// Logarithmic Gecko (through an adapter in the ftl package) all satisfy it.
type Store interface {
	// Update reports that the physical page at addr has become invalid.
	Update(addr flash.Addr) error
	// RecordErase reports that a block has been erased, so all of its pages
	// are valid (free) again.
	RecordErase(block flash.BlockID) error
	// Query returns a bitmap with one bit per page of the block; a set bit
	// means the page is invalid.
	Query(block flash.BlockID) (*bitmap.Bitmap, error)
	// RAMBytes returns the integrated-RAM footprint of the store.
	RAMBytes() int64
}

// RAMPVB is the Page Validity Bitmap kept entirely in integrated RAM.
type RAMPVB struct {
	blocks        int
	pagesPerBlock int
	bits          []*bitmap.Bitmap
}

// NewRAMPVB creates a RAM-resident PVB for a device of the given geometry.
func NewRAMPVB(blocks, pagesPerBlock int) (*RAMPVB, error) {
	if blocks <= 0 || pagesPerBlock <= 0 {
		return nil, fmt.Errorf("pvb: invalid geometry %dx%d", blocks, pagesPerBlock)
	}
	p := &RAMPVB{blocks: blocks, pagesPerBlock: pagesPerBlock, bits: make([]*bitmap.Bitmap, blocks)}
	for i := range p.bits {
		p.bits[i] = bitmap.New(pagesPerBlock)
	}
	return p, nil
}

func (p *RAMPVB) checkBlock(block flash.BlockID) error {
	if block < 0 || int(block) >= p.blocks {
		return fmt.Errorf("pvb: block %d out of range [0,%d)", block, p.blocks)
	}
	return nil
}

// Update sets the invalid bit of the page; no flash IO.
func (p *RAMPVB) Update(addr flash.Addr) error {
	if err := p.checkBlock(addr.Block); err != nil {
		return err
	}
	if addr.Offset < 0 || addr.Offset >= p.pagesPerBlock {
		return fmt.Errorf("pvb: offset %d out of range [0,%d)", addr.Offset, p.pagesPerBlock)
	}
	p.bits[addr.Block].Set(addr.Offset)
	return nil
}

// RecordErase clears every bit of the block.
func (p *RAMPVB) RecordErase(block flash.BlockID) error {
	if err := p.checkBlock(block); err != nil {
		return err
	}
	p.bits[block].Reset()
	return nil
}

// Query returns a copy of the block's validity bitmap; no flash IO.
func (p *RAMPVB) Query(block flash.BlockID) (*bitmap.Bitmap, error) {
	if err := p.checkBlock(block); err != nil {
		return nil, err
	}
	return p.bits[block].Clone(), nil
}

// RAMBytes returns B*K/8: one bit per physical page.
func (p *RAMPVB) RAMBytes() int64 {
	return int64(p.blocks) * int64((p.pagesPerBlock+7)/8)
}

// CrashRAM clears the bitmap, modeling the loss of integrated RAM at power
// failure. The FTL must rebuild it by scanning the translation table.
func (p *RAMPVB) CrashRAM() {
	for i := range p.bits {
		p.bits[i].Reset()
	}
}

// InvalidCount returns the number of invalid pages in a block; BVC
// maintenance and tests use it.
func (p *RAMPVB) InvalidCount(block flash.BlockID) (int, error) {
	if err := p.checkBlock(block); err != nil {
		return 0, err
	}
	return p.bits[block].PopCount(), nil
}

// FlashPVB stores the Page Validity Bitmap in flash. Each PVB page covers a
// contiguous range of flash blocks; updating any bit rewrites the whole PVB
// page out-of-place (one read to fetch the current version plus one write),
// which is precisely the write-amplification problem the paper attributes to
// µ-FTL's approach.
type FlashPVB struct {
	blocks        int
	pagesPerBlock int
	blocksPerPage int
	store         metastore.Storage

	// location[i] is the current flash page holding PVB page i, or
	// InvalidPPN when the range has never been written (all pages valid).
	location []flash.PPN
	// shadow mirrors the flash-resident bitmap so that the simulator can
	// answer queries after the accounted IO has been issued.
	shadow []*bitmap.Bitmap

	stats Stats
}

// Stats counts the logical operations of a flash-resident PVB.
type Stats struct {
	Updates int64
	Erases  int64
	Queries int64
}

// NewFlashPVB creates a flash-resident PVB for the given geometry, storing
// its pages through the given store. pageSize determines how many blocks'
// worth of validity bits fit into one PVB page.
func NewFlashPVB(blocks, pagesPerBlock, pageSize int, store metastore.Storage) (*FlashPVB, error) {
	if blocks <= 0 || pagesPerBlock <= 0 || pageSize <= 0 {
		return nil, fmt.Errorf("pvb: invalid geometry %dx%d page %d", blocks, pagesPerBlock, pageSize)
	}
	if store == nil {
		return nil, fmt.Errorf("pvb: nil store")
	}
	bytesPerBlock := (pagesPerBlock + 7) / 8
	blocksPerPage := pageSize / bytesPerBlock
	if blocksPerPage < 1 {
		return nil, fmt.Errorf("pvb: page size %d cannot hold even one block's bitmap (%d bytes)", pageSize, bytesPerBlock)
	}
	pvbPages := (blocks + blocksPerPage - 1) / blocksPerPage
	p := &FlashPVB{
		blocks:        blocks,
		pagesPerBlock: pagesPerBlock,
		blocksPerPage: blocksPerPage,
		store:         store,
		location:      make([]flash.PPN, pvbPages),
		shadow:        make([]*bitmap.Bitmap, blocks),
	}
	for i := range p.location {
		p.location[i] = flash.InvalidPPN
	}
	for i := range p.shadow {
		p.shadow[i] = bitmap.New(pagesPerBlock)
	}
	return p, nil
}

// Pages returns the number of PVB pages the structure comprises.
func (p *FlashPVB) Pages() int { return len(p.location) }

// Stats returns the operation counters.
func (p *FlashPVB) Stats() Stats { return p.stats }

func (p *FlashPVB) checkBlock(block flash.BlockID) error {
	if block < 0 || int(block) >= p.blocks {
		return fmt.Errorf("pvb: block %d out of range [0,%d)", block, p.blocks)
	}
	return nil
}

// pvbPageOf returns the index of the PVB page covering the block.
func (p *FlashPVB) pvbPageOf(block flash.BlockID) int { return int(block) / p.blocksPerPage }

// rewrite reads the current version of a PVB page (if any), invalidates it
// and writes the new version out-of-place.
func (p *FlashPVB) rewrite(pvbPage int) error {
	if cur := p.location[pvbPage]; cur != flash.InvalidPPN {
		if err := p.store.Read(cur); err != nil {
			return err
		}
		if err := p.store.Invalidate(cur); err != nil {
			return err
		}
	}
	ppn, err := p.store.Append(flash.SpareArea{Logical: flash.InvalidLPN, Tag: uint64(pvbPage), BlockType: flash.BlockGecko})
	if err != nil {
		return err
	}
	p.location[pvbPage] = ppn
	return nil
}

// Update marks a page invalid: one flash read plus one flash write.
func (p *FlashPVB) Update(addr flash.Addr) error {
	if err := p.checkBlock(addr.Block); err != nil {
		return err
	}
	if addr.Offset < 0 || addr.Offset >= p.pagesPerBlock {
		return fmt.Errorf("pvb: offset %d out of range [0,%d)", addr.Offset, p.pagesPerBlock)
	}
	p.stats.Updates++
	p.shadow[addr.Block].Set(addr.Offset)
	return p.rewrite(p.pvbPageOf(addr.Block))
}

// RecordErase clears the block's bits: also one read plus one write, since
// the covering PVB page must be rewritten.
func (p *FlashPVB) RecordErase(block flash.BlockID) error {
	if err := p.checkBlock(block); err != nil {
		return err
	}
	p.stats.Erases++
	p.shadow[block].Reset()
	return p.rewrite(p.pvbPageOf(block))
}

// Query reads the covering PVB page and returns the block's bitmap.
func (p *FlashPVB) Query(block flash.BlockID) (*bitmap.Bitmap, error) {
	if err := p.checkBlock(block); err != nil {
		return nil, err
	}
	p.stats.Queries++
	if cur := p.location[p.pvbPageOf(block)]; cur != flash.InvalidPPN {
		if err := p.store.Read(cur); err != nil {
			return nil, err
		}
	}
	return p.shadow[block].Clone(), nil
}

// RAMBytes returns the integrated-RAM footprint: an 8-byte location per PVB
// page, which is (4*B*K/8)/P in the paper's notation -- tiny compared to the
// RAM-resident PVB.
func (p *FlashPVB) RAMBytes() int64 {
	return int64(len(p.location)) * 8
}

// InvalidCount returns the number of invalid pages in a block without
// charging IO (the FTL maintains this in its RAM-resident BVC).
func (p *FlashPVB) InvalidCount(block flash.BlockID) (int, error) {
	if err := p.checkBlock(block); err != nil {
		return 0, err
	}
	return p.shadow[block].PopCount(), nil
}
