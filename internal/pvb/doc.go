// Package pvb implements the Page Validity Bitmap baselines that GeckoFTL's
// Logarithmic Gecko is compared against in the paper.
//
// Two variants exist. The RAM-resident PVB (used by DFTL and LazyFTL) keeps
// one validity bit per physical page in integrated RAM: updates and GC
// queries cost no flash IO, but the RAM footprint is B*K/8 bytes and the
// bitmap must be rebuilt from the translation table after a power failure.
// The flash-resident PVB (used by µ-FTL) stores the bitmap in flash pages:
// the RAM footprint shrinks to a small page directory, but every update
// costs one flash read plus one flash write and every GC query one flash
// read (Table 1 of the paper).
//
// The two variants anchor the ends of the paper's design space: the
// RAM-resident PVB is the RAM-hungry/IO-free extreme whose footprint
// GeckoFTL cuts by ~95% (Figure 13 top), and the flash-resident PVB is the
// IO-hungry extreme whose page-validity write-amplification Logarithmic
// Gecko reduces by ~98% (Figures 9 and 13 bottom).
package pvb
