package pvb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"geckoftl/internal/flash"
	"geckoftl/internal/metastore"
)

func newFlashHarness(t *testing.T, blocks, pagesPerBlock, pageSize, metaBlocks int) (*flash.Device, *FlashPVB) {
	t.Helper()
	cfg := flash.ScaledConfig(blocks + metaBlocks)
	cfg.PagesPerBlock = pagesPerBlock
	cfg.PageSize = pageSize
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var metaIDs []flash.BlockID
	for i := blocks; i < blocks+metaBlocks; i++ {
		metaIDs = append(metaIDs, flash.BlockID(i))
	}
	store, err := metastore.NewBlockStore(dev, metaIDs, flash.BlockGecko, flash.PurposePageValidity)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewFlashPVB(blocks, pagesPerBlock, pageSize, store)
	if err != nil {
		t.Fatal(err)
	}
	return dev, p
}

func TestRAMPVBValidation(t *testing.T) {
	if _, err := NewRAMPVB(0, 8); err == nil {
		t.Error("zero blocks accepted")
	}
	if _, err := NewRAMPVB(8, 0); err == nil {
		t.Error("zero pages per block accepted")
	}
	p, err := NewRAMPVB(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Update(flash.Addr{Block: 8, Offset: 0}); err == nil {
		t.Error("out-of-range block accepted")
	}
	if err := p.Update(flash.Addr{Block: 0, Offset: 16}); err == nil {
		t.Error("out-of-range offset accepted")
	}
	if err := p.RecordErase(-1); err == nil {
		t.Error("negative block erase accepted")
	}
	if _, err := p.Query(99); err == nil {
		t.Error("out-of-range query accepted")
	}
}

func TestRAMPVBUpdateQueryErase(t *testing.T) {
	p, _ := NewRAMPVB(16, 8)
	p.Update(flash.Addr{Block: 3, Offset: 1})
	p.Update(flash.Addr{Block: 3, Offset: 5})
	got, err := p.Query(3)
	if err != nil {
		t.Fatal(err)
	}
	if got.PopCount() != 2 || !got.Get(1) || !got.Get(5) {
		t.Errorf("query = %v", got.SetBits())
	}
	n, _ := p.InvalidCount(3)
	if n != 2 {
		t.Errorf("InvalidCount = %d, want 2", n)
	}
	p.RecordErase(3)
	got, _ = p.Query(3)
	if got.Any() {
		t.Errorf("query after erase = %v", got.SetBits())
	}
	// Query must return a copy, not expose internal state.
	got.Set(0)
	again, _ := p.Query(3)
	if again.Any() {
		t.Error("Query exposed internal bitmap")
	}
}

func TestRAMPVBRAMBytesMatchesPaperFormula(t *testing.T) {
	// B*K/8 bytes: the paper's 2 TB example (K=2^22, B=2^7) needs 64 MB.
	p, _ := NewRAMPVB(1<<22, 1<<7)
	if got := p.RAMBytes(); got != 64<<20 {
		t.Errorf("RAMBytes = %d, want %d", got, 64<<20)
	}
}

func TestRAMPVBCrash(t *testing.T) {
	p, _ := NewRAMPVB(4, 8)
	p.Update(flash.Addr{Block: 1, Offset: 1})
	p.CrashRAM()
	got, _ := p.Query(1)
	if got.Any() {
		t.Error("bitmap survived CrashRAM")
	}
}

func TestFlashPVBValidation(t *testing.T) {
	dev, _ := newFlashHarness(t, 16, 8, 512, 4)
	_ = dev
	if _, err := NewFlashPVB(0, 8, 512, nil); err == nil {
		t.Error("bad geometry accepted")
	}
	if _, err := NewFlashPVB(16, 8, 512, nil); err == nil {
		t.Error("nil store accepted")
	}
	// A page too small to hold one block's bitmap must be rejected.
	cfg := flash.ScaledConfig(2)
	d2, _ := flash.NewDevice(cfg)
	store, _ := metastore.NewBlockStore(d2, []flash.BlockID{0}, flash.BlockGecko, flash.PurposePageValidity)
	if _, err := NewFlashPVB(16, 1<<20, 4096, store); err == nil {
		t.Error("oversized block bitmap accepted")
	}
}

func TestFlashPVBUpdateCostsOneReadOneWrite(t *testing.T) {
	dev, p := newFlashHarness(t, 64, 16, 512, 8)
	// First update: no prior version, so just one write.
	if err := p.Update(flash.Addr{Block: 0, Offset: 1}); err != nil {
		t.Fatal(err)
	}
	c := dev.Counters()
	if c.Count(flash.OpPageWrite, flash.PurposePageValidity) != 1 {
		t.Errorf("writes after first update = %d, want 1", c.Count(flash.OpPageWrite, flash.PurposePageValidity))
	}
	// Subsequent update to the same PVB page: one read + one write.
	before := dev.Counters()
	if err := p.Update(flash.Addr{Block: 0, Offset: 2}); err != nil {
		t.Fatal(err)
	}
	delta := dev.Counters().Sub(before)
	if delta.Count(flash.OpPageRead, flash.PurposePageValidity) != 1 ||
		delta.Count(flash.OpPageWrite, flash.PurposePageValidity) != 1 {
		t.Errorf("update cost = %v, want 1 read + 1 write", delta)
	}
}

func TestFlashPVBQueryCostsOneRead(t *testing.T) {
	dev, p := newFlashHarness(t, 64, 16, 512, 8)
	p.Update(flash.Addr{Block: 5, Offset: 3})
	before := dev.Counters()
	got, err := p.Query(5)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Get(3) || got.PopCount() != 1 {
		t.Errorf("query = %v", got.SetBits())
	}
	delta := dev.Counters().Sub(before)
	if delta.Count(flash.OpPageRead, flash.PurposePageValidity) != 1 || delta.TotalOp(flash.OpPageWrite) != 0 {
		t.Errorf("query cost = %v, want exactly 1 read", delta)
	}
	// Querying a block whose covering PVB page was never written costs
	// nothing (fresh device, no updates yet).
	dev2, p2 := newFlashHarness(t, 64, 16, 512, 8)
	before = dev2.Counters()
	got, _ = p2.Query(60)
	if got.Any() {
		t.Error("untouched block reported invalid pages")
	}
	delta = dev2.Counters().Sub(before)
	if delta.TotalOp(flash.OpPageRead) != 0 {
		t.Error("query of never-written PVB page cost a read")
	}
}

func TestFlashPVBEraseClearsBits(t *testing.T) {
	_, p := newFlashHarness(t, 64, 16, 512, 8)
	p.Update(flash.Addr{Block: 7, Offset: 1})
	p.Update(flash.Addr{Block: 7, Offset: 9})
	if err := p.RecordErase(7); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Query(7)
	if got.Any() {
		t.Errorf("query after erase = %v", got.SetBits())
	}
	n, _ := p.InvalidCount(7)
	if n != 0 {
		t.Errorf("InvalidCount after erase = %d", n)
	}
	st := p.Stats()
	if st.Updates != 2 || st.Erases != 1 || st.Queries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFlashPVBPagesAndRAM(t *testing.T) {
	_, p := newFlashHarness(t, 256, 16, 512, 8)
	// 16-page blocks need 2 bytes of bitmap; 512-byte pages hold 256 blocks.
	if got := p.Pages(); got != 1 {
		t.Errorf("Pages = %d, want 1", got)
	}
	if got := p.RAMBytes(); got != 8 {
		t.Errorf("RAMBytes = %d, want 8", got)
	}
	// The flash-resident PVB must need far less RAM than the RAM-resident
	// one for the same geometry.
	ram, _ := NewRAMPVB(256, 16)
	if p.RAMBytes()*10 > ram.RAMBytes() {
		t.Errorf("flash PVB RAM %d not far below RAM PVB %d", p.RAMBytes(), ram.RAMBytes())
	}
}

func TestFlashPVBOutOfRange(t *testing.T) {
	_, p := newFlashHarness(t, 16, 8, 512, 4)
	if err := p.Update(flash.Addr{Block: 16, Offset: 0}); err == nil {
		t.Error("out-of-range block accepted")
	}
	if err := p.Update(flash.Addr{Block: 0, Offset: 8}); err == nil {
		t.Error("out-of-range offset accepted")
	}
	if err := p.RecordErase(-1); err == nil {
		t.Error("negative erase accepted")
	}
	if _, err := p.Query(16); err == nil {
		t.Error("out-of-range query accepted")
	}
}

// Property: RAM-resident and flash-resident PVB agree with each other under
// arbitrary workloads (they implement the same abstract state machine with
// different IO cost profiles).
func TestQuickVariantsAgree(t *testing.T) {
	f := func(seed int64) bool {
		const blocks, b = 32, 8
		devCfg := flash.ScaledConfig(blocks + 32)
		devCfg.PagesPerBlock = b
		devCfg.PageSize = 256
		dev, err := flash.NewDevice(devCfg)
		if err != nil {
			return false
		}
		var metaIDs []flash.BlockID
		for i := blocks; i < blocks+32; i++ {
			metaIDs = append(metaIDs, flash.BlockID(i))
		}
		store, err := metastore.NewBlockStore(dev, metaIDs, flash.BlockGecko, flash.PurposePageValidity)
		if err != nil {
			return false
		}
		fp, err := NewFlashPVB(blocks, b, 256, store)
		if err != nil {
			return false
		}
		rp, _ := NewRAMPVB(blocks, b)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			if rng.Intn(10) == 0 {
				blk := flash.BlockID(rng.Intn(blocks))
				if fp.RecordErase(blk) != nil || rp.RecordErase(blk) != nil {
					return false
				}
				continue
			}
			a := flash.Addr{Block: flash.BlockID(rng.Intn(blocks)), Offset: rng.Intn(b)}
			if fp.Update(a) != nil || rp.Update(a) != nil {
				return false
			}
		}
		for blk := 0; blk < blocks; blk++ {
			x, err1 := fp.Query(flash.BlockID(blk))
			y, err2 := rp.Query(flash.BlockID(blk))
			if err1 != nil || err2 != nil || !x.Equal(y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Both variants satisfy the shared Store interface.
var (
	_ Store = (*RAMPVB)(nil)
	_ Store = (*FlashPVB)(nil)
)
