package pvb

import "geckoftl/internal/flash"

// IsLive reports whether the given flash page currently holds the newest
// version of one of the structure's PVB pages. The FTL's garbage-collector
// uses it when a greedy victim-selection policy (µ-FTL's) picks a metadata
// block for collection.
func (p *FlashPVB) IsLive(ppn flash.PPN) bool {
	for _, loc := range p.location {
		if loc == ppn {
			return true
		}
	}
	return false
}

// Relocate informs the structure that the garbage-collector moved one of its
// live PVB pages to a new location. It reports whether the old location was
// actually live.
func (p *FlashPVB) Relocate(old, new flash.PPN) bool {
	for i, loc := range p.location {
		if loc == old {
			p.location[i] = new
			return true
		}
	}
	return false
}

// LivePages returns the physical addresses of the current version of every
// PVB page. Recovery uses it to rebuild per-block valid-page counts.
func (p *FlashPVB) LivePages() []flash.PPN {
	var out []flash.PPN
	for _, loc := range p.location {
		if loc != flash.InvalidPPN {
			out = append(out, loc)
		}
	}
	return out
}
