// Package stats provides the streaming latency histograms behind the
// engine's per-operation tail-latency instrumentation.
//
// The GeckoFTL paper argues for *sustained, predictable* performance:
// metadata-aware garbage collection exists precisely to avoid pathological
// stalls, so the interesting metric is not mean throughput but the shape of
// the latency distribution — p50 through p99.9 and the worst case. A
// Histogram records simulated per-operation service times into
// logarithmically spaced buckets (bounded relative error, constant memory,
// no sample retention) and histograms from independent engine shards merge
// exactly, which is what lets the sharded ftl.Engine aggregate a device-wide
// distribution without sharing any mutable state between shards.
package stats
