package stats

import (
	"math/rand"
	"testing"
	"time"
)

// TestBucketRoundTrip pins the bucket layout: every bucket's upper bound maps
// back to the same bucket, and bucket boundaries are monotonic.
func TestBucketRoundTrip(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < numBuckets; i++ {
		upper := bucketUpper(i)
		if upper <= prev {
			t.Fatalf("bucket %d upper %d not above previous %d", i, upper, prev)
		}
		if got := bucketOf(upper); got != i {
			t.Fatalf("bucketOf(bucketUpper(%d)) = %d", i, got)
		}
		prev = upper
	}
}

// TestRecordedValueWithinBucketError checks the bounded relative error: a
// quantile covering a single recorded value is never below it and overshoots
// by at most one sub-bucket width.
func TestRecordedValueWithinBucketError(t *testing.T) {
	for _, v := range []time.Duration{0, 1, 15, 16, 17, 1000, 100 * time.Microsecond, time.Millisecond, 2*time.Millisecond + 1, time.Hour} {
		h := NewHistogram()
		h.Record(v)
		got := h.Quantile(1)
		if got != v {
			// Quantile clamps to the exact max, so a single observation must
			// come back exactly.
			t.Errorf("Quantile(1) of single value %v = %v", v, got)
		}
	}
}

// TestMergeEqualsConcatenation is the satellite regression test: merging
// shard histograms must equal the histogram of the concatenated samples at
// bucket resolution, across several shard counts and distributions.
func TestMergeEqualsConcatenation(t *testing.T) {
	cases := []struct {
		name   string
		shards int
		gen    func(r *rand.Rand) time.Duration
	}{
		{"uniform-2", 2, func(r *rand.Rand) time.Duration { return time.Duration(r.Int63n(int64(5 * time.Millisecond))) }},
		{"heavy-tail-4", 4, func(r *rand.Rand) time.Duration {
			d := time.Duration(r.Int63n(int64(time.Millisecond)))
			if r.Intn(100) == 0 {
				d += 50 * time.Millisecond
			}
			return d
		}},
		{"constant-8", 8, func(*rand.Rand) time.Duration { return time.Millisecond }},
		{"empty-shards", 3, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			shards := make([]*Histogram, tc.shards)
			whole := NewHistogram()
			for i := range shards {
				shards[i] = NewHistogram()
				if tc.gen == nil {
					continue
				}
				for n := 0; n < 500*(i+1); n++ {
					d := tc.gen(r)
					shards[i].Record(d)
					whole.Record(d)
				}
			}
			merged := NewHistogram()
			for _, s := range shards {
				merged.Merge(s)
			}
			if merged.Count() != whole.Count() {
				t.Fatalf("merged count %d != concatenated count %d", merged.Count(), whole.Count())
			}
			if merged.Sum() != whole.Sum() {
				t.Fatalf("merged sum %v != concatenated sum %v", merged.Sum(), whole.Sum())
			}
			if merged.Max() != whole.Max() {
				t.Fatalf("merged max %v != concatenated max %v", merged.Max(), whole.Max())
			}
			for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
				if m, w := merged.Quantile(q), whole.Quantile(q); m != w {
					t.Errorf("q=%g: merged %v != concatenated %v", q, m, w)
				}
			}
			if merged.counts != whole.counts {
				t.Error("merged bucket counts differ from concatenated bucket counts")
			}
		})
	}
}

// TestSummary covers the empty histogram and basic ordering of percentiles.
func TestSummary(t *testing.T) {
	var empty Histogram
	if s := empty.Summary(); s != (Summary{}) {
		t.Fatalf("empty summary = %+v", s)
	}
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	s := h.Summary()
	if s.Count != 1000 || s.Max != time.Millisecond {
		t.Fatalf("summary count/max = %d/%v", s.Count, s.Max)
	}
	if !(s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.P999 && s.P999 <= s.Max) {
		t.Fatalf("percentiles not monotonic: %v", s)
	}
	if s.P50 < 500*time.Microsecond {
		t.Fatalf("p50 %v below the true median", s.P50)
	}
}
