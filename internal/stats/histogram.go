package stats

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// The bucket layout follows the HDR-histogram idea: values below subCount
// nanoseconds get one bucket each (exact), and every further power-of-two
// range is split into subCount linear sub-buckets, so a bucket's width is at
// most 1/subCount of its value (≤ 6.25% relative error with subBits = 4).
const (
	subBits  = 4
	subCount = 1 << subBits
	// numBuckets covers every non-negative int64 nanosecond value: subCount
	// exact buckets plus subCount sub-buckets for each of the 63-subBits
	// remaining powers of two.
	numBuckets = subCount * (64 - subBits)
)

// bucketOf maps a non-negative nanosecond value to its bucket index.
func bucketOf(v int64) int {
	if v < subCount {
		return int(v)
	}
	n := bits.Len64(uint64(v)) // 2^(n-1) <= v < 2^n, n >= subBits+1
	major := n - subBits       // >= 1
	sub := int(v>>uint(n-1-subBits)) - subCount
	return subCount + (major-1)*subCount + sub
}

// bucketUpper returns the largest nanosecond value a bucket holds; quantiles
// report it so that every percentile is a conservative upper bound.
func bucketUpper(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	major := (i-subCount)/subCount + 1
	sub := (i - subCount) % subCount
	return int64(subCount+sub+1)<<uint(major-1) - 1
}

// Histogram is a streaming, mergeable latency histogram with logarithmic
// buckets. The zero value is ready to use. It is not safe for concurrent
// use; the engine guards each shard's histograms with the shard lock.
type Histogram struct {
	counts [numBuckets]int64
	count  int64
	sum    time.Duration
	max    time.Duration
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Record adds one observation. Negative durations are clamped to zero.
//
//geckolint:hotpath
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(int64(d))]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of observations recorded.
func (h *Histogram) Count() int64 { return h.count }

// Max returns the largest observation recorded (exact, not bucketed).
func (h *Histogram) Max() time.Duration { return h.max }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Mean returns the mean observation, zero when empty.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) at bucket
// resolution, clamped to the exact maximum. Empty histograms return zero.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i]
		if cum >= rank {
			v := time.Duration(bucketUpper(i))
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge adds every observation of other into h. Merging shard histograms
// yields exactly the histogram of the concatenated observation streams
// (bucket counts are added, the maximum is exact).
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset empties the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// Summary is a fixed set of distribution statistics, suitable for JSON
// output (durations encode as nanoseconds).
type Summary struct {
	Count int64
	Mean  time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	P999  time.Duration
	Max   time.Duration
}

// Summary computes the histogram's summary statistics.
func (h *Histogram) Summary() Summary {
	return Summary{
		Count: h.count,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.max,
	}
}

// String renders the summary compactly, e.g. for experiment tables.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v p99.9=%v max=%v",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.P999, s.Max)
}
