package sim

import (
	"fmt"
	"strings"
	"time"

	"geckoftl/internal/flash"
	"geckoftl/internal/ftl"
	"geckoftl/internal/workload"
)

// DeviceSpec describes the simulated device used by an experiment.
type DeviceSpec struct {
	Blocks        int
	PagesPerBlock int
	PageSize      int
	OverProvision float64
	// Channels and DiesPerChannel set the device topology (zero means one
	// each: the paper's single serialized plane). The channel-sweep
	// experiments override Channels.
	Channels       int
	DiesPerChannel int
}

// DefaultDeviceSpec is the scaled-down device used by the simulation
// experiments: the paper's page size, block size and over-provisioning with
// fewer blocks so that experiments finish quickly. The analytical experiments
// (Figure 1, Figure 13 top and middle, Table 1) use the full 2 TB parameters
// from the model package instead.
func DefaultDeviceSpec() DeviceSpec {
	return DeviceSpec{Blocks: 256, PagesPerBlock: 32, PageSize: 1024, OverProvision: 0.7}
}

// Config converts the spec into a device configuration.
func (s DeviceSpec) Config() flash.Config {
	cfg := flash.ScaledConfig(s.Blocks)
	cfg.PagesPerBlock = s.PagesPerBlock
	cfg.PageSize = s.PageSize
	if s.OverProvision > 0 {
		cfg.OverProvision = s.OverProvision
	}
	cfg.Channels = s.Channels
	cfg.DiesPerChannel = s.DiesPerChannel
	return cfg
}

// NewDevice builds the device.
func (s DeviceSpec) NewDevice() (*flash.Device, error) {
	return flash.NewDevice(s.Config())
}

// Result is the outcome of running one FTL configuration under a workload.
type Result struct {
	// Name identifies the FTL (and variant) measured.
	Name string
	// Writes is the number of logical writes measured (after warm-up).
	Writes int64
	// WA is the overall write-amplification WA = i_writes + i_reads/delta,
	// per logical write.
	WA float64
	// UserWA, TranslationWA and ValidityWA break WA down by purpose as in
	// Figure 13 bottom: user data (application writes + GC of user data),
	// translation metadata (synchronization operations), and page-validity
	// metadata (PVB / Logarithmic Gecko / PVL updates, GC queries and their
	// garbage-collection).
	UserWA, TranslationWA, ValidityWA float64
	// RAMBytes is the FTL's integrated-RAM footprint at the end of the run.
	RAMBytes int64
	// GCOperations counts garbage-collection victim reclaims in the
	// measured window.
	GCOperations int64
	// SimulatedTime is the device-time consumed by the measured window.
	SimulatedTime time.Duration
}

// String renders the result as a table row.
func (r Result) String() string {
	return fmt.Sprintf("%-10s WA=%.3f (user=%.3f translation=%.3f validity=%.3f) RAM=%dB GC=%d",
		r.Name, r.WA, r.UserWA, r.TranslationWA, r.ValidityWA, r.RAMBytes, r.GCOperations)
}

// RunOptions controls a simulation run.
type RunOptions struct {
	// Device is the device geometry.
	Device DeviceSpec
	// FTLOptions configures the FTL under test.
	FTLOptions ftl.Options
	// Workload generates the logical operation stream. If nil, uniformly
	// random writes with seed 1 are used.
	Workload workload.Generator
	// WarmupWrites fills the device before measurement begins so that
	// steady-state garbage-collection is included. Defaults to twice the
	// logical page count when zero and unset (-1 disables warm-up).
	WarmupWrites int64
	// MeasureWrites is the number of logical writes in the measured window.
	MeasureWrites int64
}

// Run executes one simulation and returns its result.
func Run(opts RunOptions) (Result, error) {
	dev, err := opts.Device.NewDevice()
	if err != nil {
		return Result{}, err
	}
	f, err := ftl.New(dev, opts.FTLOptions)
	if err != nil {
		return Result{}, err
	}
	gen := opts.Workload
	if gen == nil {
		gen = workload.MustNewUniform(f.LogicalPages(), 1)
	}
	warmup := opts.WarmupWrites
	if warmup == 0 {
		warmup = 2 * f.LogicalPages()
	}
	if warmup < 0 {
		warmup = 0
	}
	if opts.MeasureWrites <= 0 {
		return Result{}, fmt.Errorf("sim: measure writes %d must be positive", opts.MeasureWrites)
	}

	if err := drive(f, gen, warmup); err != nil {
		return Result{}, fmt.Errorf("sim: warm-up: %w", err)
	}
	dev.ResetCounters()
	timeBefore := dev.SimulatedTime()
	statsBefore := f.Stats()
	if err := drive(f, gen, opts.MeasureWrites); err != nil {
		return Result{}, fmt.Errorf("sim: measurement: %w", err)
	}

	counters := dev.Counters()
	delta := dev.Config().Latency.WriteReadRatio()
	writes := opts.MeasureWrites
	result := Result{
		Name:          f.Name(),
		Writes:        writes,
		WA:            counters.WriteAmplification(writes, delta),
		RAMBytes:      f.RAMBytes(),
		GCOperations:  f.Stats().GCOperations - statsBefore.GCOperations,
		SimulatedTime: dev.SimulatedTime() - timeBefore,
	}
	result.UserWA = counters.PurposeWriteAmplification(flash.PurposeUserWrite, writes, delta) +
		counters.PurposeWriteAmplification(flash.PurposeGCMigration, writes, delta)
	result.TranslationWA = counters.PurposeWriteAmplification(flash.PurposeTranslation, writes, delta)
	result.ValidityWA = counters.PurposeWriteAmplification(flash.PurposePageValidity, writes, delta)
	return result, nil
}

// drive pushes n operations from the generator into the FTL, counting only
// writes toward n (reads are passed through but not counted, matching the
// paper's write-only accounting).
func drive(f *ftl.FTL, gen workload.Generator, n int64) error {
	var done int64
	for done < n {
		op := gen.Next()
		if op.Kind == workload.OpRead {
			if err := f.Read(op.Page); err != nil {
				return err
			}
			continue
		}
		if err := f.Write(op.Page); err != nil {
			return err
		}
		done++
	}
	return nil
}

// FormatTable renders results as an aligned text table with a header.
func FormatTable(header string, results []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", header)
	fmt.Fprintf(&b, "%-12s %10s %10s %12s %10s %12s %8s\n",
		"ftl", "WA", "user", "translation", "validity", "RAM(bytes)", "GC-ops")
	for _, r := range results {
		fmt.Fprintf(&b, "%-12s %10.3f %10.3f %12.3f %10.3f %12d %8d\n",
			r.Name, r.WA, r.UserWA, r.TranslationWA, r.ValidityWA, r.RAMBytes, r.GCOperations)
	}
	return b.String()
}
