package sim

import "testing"

// TestTrimSweepTrends pins the acceptance bar of the trim experiment: at a
// fixed workload, write-amplification falls strictly and monotonically as
// the host trim fraction rises, because every trimmed page is an invalid
// page the garbage collector no longer has to discover or migrate around.
func TestTrimSweepTrends(t *testing.T) {
	points, err := TrimSweep(TrimSweepOptions{Scale: QuickScale()})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("expected 4 points, got %d", len(points))
	}
	for i, p := range points {
		if p.Writes <= 0 {
			t.Errorf("point %d measured no writes", i)
		}
		if p.TrimFraction == 0 {
			if p.Trims != 0 || p.TrimmedPages != 0 {
				t.Errorf("zero-fraction point reported %d trims, %d trimmed pages", p.Trims, p.TrimmedPages)
			}
			continue
		}
		if p.Trims == 0 {
			t.Errorf("f=%.2f point issued no trims", p.TrimFraction)
		}
		if p.TrimmedPages == 0 {
			t.Errorf("f=%.2f point invalidated no pages", p.TrimFraction)
		}
		if p.Trim.Count != p.Trims {
			t.Errorf("f=%.2f: recorded %d trim latencies for %d trims", p.TrimFraction, p.Trim.Count, p.Trims)
		}
	}
	for i := 1; i < len(points); i++ {
		prev, cur := points[i-1], points[i]
		if cur.TrimFraction <= prev.TrimFraction {
			t.Fatalf("sweep fractions not increasing: %.2f then %.2f", prev.TrimFraction, cur.TrimFraction)
		}
		if cur.WA >= prev.WA {
			t.Errorf("WA not strictly decreasing with trim fraction: f=%.2f WA=%.4f vs f=%.2f WA=%.4f",
				prev.TrimFraction, prev.WA, cur.TrimFraction, cur.WA)
		}
	}
}

// TestTrimSweepValidatesInput mirrors the other sweeps' input checking.
func TestTrimSweepValidatesInput(t *testing.T) {
	if _, err := TrimSweep(TrimSweepOptions{}); err == nil {
		t.Fatal("expected an error for a zero measured window")
	}
	scale := QuickScale()
	if _, err := TrimSweep(TrimSweepOptions{Scale: scale, Workload: "nope"}); err == nil {
		t.Fatal("expected an error for an unknown workload")
	}
	if _, err := TrimSweep(TrimSweepOptions{Scale: scale, TrimFractions: []float64{1.5}}); err == nil {
		t.Fatal("expected an error for an out-of-range trim fraction")
	}
}
