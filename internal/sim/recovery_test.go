package sim

import (
	"testing"
	"time"
)

// TestRecoverySweepTrends runs the engine-recovery sweep at the quick scale
// and pins the qualitative trends the analytic model predicts: recovery
// parallelism scales with channels, the backwards scan is bounded by the
// checkpointed cache capacity, and LazyFTL's recovery grows with capacity
// while GeckoFTL's stays bounded by comparison.
func TestRecoverySweepTrends(t *testing.T) {
	points, err := RecoverySweep(RecoverySweepOptions{Scale: QuickScale()})
	if err != nil {
		t.Fatal(err)
	}
	byDim := map[string][]RecoveryPoint{}
	for _, p := range points {
		byDim[p.Dimension] = append(byDim[p.Dimension], p)
		if p.WallClock <= 0 || p.SerialTime < p.WallClock {
			t.Errorf("%s %s: degenerate times wall=%v serial=%v", p.Dimension, p.FTL, p.WallClock, p.SerialTime)
		}
		if p.RecoveredEntries > p.CacheEntries {
			t.Errorf("%s %s: recovered %d entries with a %d-entry budget", p.Dimension, p.FTL, p.RecoveredEntries, p.CacheEntries)
		}
		if p.Shards == 1 && p.WallClock != p.SerialTime {
			t.Errorf("%s %s: single shard wall %v != serial %v", p.Dimension, p.FTL, p.WallClock, p.SerialTime)
		}
	}

	// Channels dimension: parallel recovery is measurably below the serial
	// scan at the widest point, and beats the single-channel wall-clock.
	chans := byDim["channels"]
	if len(chans) < 2 {
		t.Fatalf("channels dimension has %d points", len(chans))
	}
	first, widest := chans[0], chans[len(chans)-1]
	if widest.Channels <= first.Channels {
		t.Fatalf("channels dimension not ordered: %d then %d", first.Channels, widest.Channels)
	}
	if 2*widest.WallClock >= widest.SerialTime {
		t.Errorf("%d channels: wall %v not measurably below serial %v", widest.Channels, widest.WallClock, widest.SerialTime)
	}
	if 2*widest.WallClock >= first.WallClock {
		t.Errorf("wall-clock did not shrink with channels: %v at %d channels vs %v at %d",
			widest.WallClock, widest.Channels, first.WallClock, first.Channels)
	}
	if widest.ModelWall >= first.ModelWall {
		t.Errorf("model disagrees with the channels trend: %v at %d channels vs %v at %d",
			widest.ModelWall, widest.Channels, first.ModelWall, first.Channels)
	}

	// Checkpoint dimension: the recovered-entry count follows the cache
	// capacity (the checkpointed backwards scan recreates at most C entries
	// within 2C spare reads per shard).
	checkpoints := append([]RecoveryPoint(nil), byDim["checkpoint"]...)
	checkpoints = append(checkpoints, widest) // same topology, the scale's own budget
	for _, a := range checkpoints {
		for _, b := range checkpoints {
			if a.CacheEntries < b.CacheEntries && a.RecoveredEntries > b.RecoveredEntries {
				t.Errorf("smaller cache %d recovered more entries (%d) than cache %d (%d)",
					a.CacheEntries, a.RecoveredEntries, b.CacheEntries, b.RecoveredEntries)
			}
		}
	}

	// Capacity dimension: at every size LazyFTL's synchronize-before-resume
	// recovery costs more than GeckoFTL's, and the gap widens as the device
	// grows — the Figure 1 / Figure 13 middle trend. The analytic model must
	// agree on both counts.
	type pair struct{ gecko, lazy RecoveryPoint }
	byBlocks := map[int]*pair{}
	blocksOrder := []int{}
	for _, p := range byDim["capacity"] {
		pr := byBlocks[p.Blocks]
		if pr == nil {
			pr = &pair{}
			byBlocks[p.Blocks] = pr
			blocksOrder = append(blocksOrder, p.Blocks)
		}
		if p.FTL == "LazyFTL" {
			pr.lazy = p
		} else {
			pr.gecko = p
		}
	}
	if len(blocksOrder) < 2 {
		t.Fatalf("capacity dimension has %d sizes", len(blocksOrder))
	}
	var prevGap, prevModelGap time.Duration
	for i, blocks := range blocksOrder {
		pr := byBlocks[blocks]
		if pr.lazy.WallClock <= pr.gecko.WallClock {
			t.Errorf("%d blocks: LazyFTL recovery %v not above GeckoFTL %v", blocks, pr.lazy.WallClock, pr.gecko.WallClock)
		}
		if pr.lazy.ModelWall <= pr.gecko.ModelWall {
			t.Errorf("%d blocks: model LazyFTL %v not above model GeckoFTL %v", blocks, pr.lazy.ModelWall, pr.gecko.ModelWall)
		}
		gap := pr.lazy.WallClock - pr.gecko.WallClock
		modelGap := pr.lazy.ModelWall - pr.gecko.ModelWall
		if i > 0 {
			if gap <= prevGap {
				t.Errorf("%d blocks: LazyFTL-GeckoFTL gap %v did not widen from %v", blocks, gap, prevGap)
			}
			if modelGap <= prevModelGap {
				t.Errorf("%d blocks: model gap %v did not widen from %v", blocks, modelGap, prevModelGap)
			}
		}
		prevGap, prevModelGap = gap, modelGap
	}
}
