package sim

import (
	"fmt"
	"strings"

	"geckoftl/internal/flash"
	"geckoftl/internal/ftl"
	"geckoftl/internal/workload"
)

// EndurancePoint is one row of the endurance sweep: a device with a finite
// per-block erase budget and a fault-injection plan, driven until it dies,
// reporting its lifetime in host writes.
type EndurancePoint struct {
	// Workload names the write pattern.
	Workload string
	// Policy is "baseline" (LIFO free-block reuse, no wear-leveling) or
	// "wear-aware" (coldest-erase-count-first allocation plus the Appendix D
	// gradual-scan wear-leveler).
	Policy string
	// WearAware reports whether the point ran the wear-aware policy.
	WearAware bool
	// FaultRate is the injected program-failure probability per page program
	// (erase failures are injected at half this rate).
	FaultRate float64
	// MaxEraseCount is the per-block erase budget.
	MaxEraseCount int
	// Lifetime is the number of host writes served before the device died of
	// capacity exhaustion. The sweep's acceptance bars: strictly decreasing
	// in FaultRate at fixed policy, strictly larger for wear-aware at fixed
	// rate.
	Lifetime int64
	// BadBlocks and ProgramRetries describe the fault damage at death.
	BadBlocks, ProgramRetries int64
	// EraseSpread is the erase-count spread at death: how unevenly the
	// budget was consumed.
	EraseSpread int
	// Capped reports that the run hit the write cap instead of dying; a
	// capped Lifetime is a lower bound, not a lifetime.
	Capped bool
}

// String renders the point as a table row.
func (p EndurancePoint) String() string {
	capped := ""
	if p.Capped {
		capped = " (capped)"
	}
	return fmt.Sprintf("%-8s %-10s fault=%.2f lifetime=%d%s bad=%d retries=%d spread=%d",
		p.Workload, p.Policy, p.FaultRate, p.Lifetime, capped, p.BadBlocks, p.ProgramRetries, p.EraseSpread)
}

// EnduranceSweepOptions parameterizes EnduranceSweep.
type EnduranceSweepOptions struct {
	// Scale sizes the device and cache and seeds the workload and fault
	// plan. MeasureWrites is not used: endurance runs until death.
	Scale ExperimentScale
	// MaxEraseCount is the per-block erase budget. Zero means 24.
	MaxEraseCount int
	// FaultRates lists the program-failure rates to sweep. Empty means
	// {0, 0.02, 0.08}. Rates share the scale's seed, so the injected
	// failure sets are nested across rates (a failure at rate r also fails
	// at every r' > r), which keeps the lifetime trend monotone by
	// construction rather than by luck.
	FaultRates []float64
	// Workload names the write pattern. Empty means zipfian: skew is what
	// separates wear-aware allocation from LIFO reuse, because a skewed
	// stream recycles hot blocks while stranding budget in cold ones.
	Workload string
	// WriteCap bounds a single point's host writes as a runaway guard. Zero
	// derives it from the device's total program budget.
	WriteCap int64
}

// capacityExhausted reports the errors that mean the device died of lost
// capacity — the expected end of an endurance run.
func capacityExhausted(err error) bool {
	return err != nil && (strings.Contains(err.Error(), "no free blocks") ||
		strings.Contains(err.Error(), "garbage collection stalled") ||
		strings.Contains(err.Error(), "found no victim"))
}

// EnduranceSweep measures device lifetime — host writes served until capacity
// exhaustion — across {fault rate} x {allocation policy} on a device with a
// finite per-block erase budget. Every point drives the same workload stream
// into a fresh device until the FTL can no longer make space, the endurance
// counterpart of the paper's claim that placement decides lifetime as well as
// throughput: the budget a policy strands in cold blocks is budget the device
// dies without spending.
func EnduranceSweep(opts EnduranceSweepOptions) ([]EndurancePoint, error) {
	maxErase := opts.MaxEraseCount
	if maxErase <= 0 {
		maxErase = 24
	}
	rates := opts.FaultRates
	if len(rates) == 0 {
		rates = []float64{0, 0.02, 0.08}
	}
	wl := opts.Workload
	if wl == "" {
		wl = "zipfian"
	}
	spec := opts.Scale.Device
	cap := opts.WriteCap
	if cap <= 0 {
		// The device cannot program more pages than its total erase budget
		// allows; 3x that in host writes is unreachable.
		cap = 3 * int64(spec.Blocks) * int64(spec.PagesPerBlock) * int64(maxErase)
	}

	var points []EndurancePoint
	for _, wearAware := range []bool{false, true} {
		for _, rate := range rates {
			p, err := endurancePoint(opts.Scale, wl, maxErase, rate, wearAware, cap)
			if err != nil {
				return nil, fmt.Errorf("sim: endurance (%s, fault=%.2f, wearAware=%v): %w", wl, rate, wearAware, err)
			}
			points = append(points, p)
		}
	}
	return points, nil
}

// endurancePoint drives one device to death.
func endurancePoint(scale ExperimentScale, wl string, maxErase int, rate float64, wearAware bool, cap int64) (EndurancePoint, error) {
	cfg := scale.Device.Config()
	cfg.MaxEraseCount = maxErase
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		return EndurancePoint{}, err
	}
	if err := dev.SetFaultPlan(flash.FaultPlan{
		Seed:            scale.Seed,
		ProgramFailRate: rate,
		EraseFailRate:   rate / 2,
	}); err != nil {
		return EndurancePoint{}, err
	}

	ftlOpts := ftl.GeckoFTLOptions(scale.CacheEntries)
	ftlOpts.WearAwareAllocation = wearAware
	ftlOpts.WearLeveling = wearAware
	f, err := ftl.New(dev, ftlOpts)
	if err != nil {
		return EndurancePoint{}, err
	}
	gen, err := workload.ByName(wl, f.LogicalPages(), scale.Seed)
	if err != nil {
		return EndurancePoint{}, err
	}

	policy := "baseline"
	if wearAware {
		policy = "wear-aware"
	}
	p := EndurancePoint{
		Workload:      wl,
		Policy:        policy,
		WearAware:     wearAware,
		FaultRate:     rate,
		MaxEraseCount: maxErase,
	}
	for p.Lifetime < cap {
		op := gen.Next()
		if op.Kind != workload.OpWrite {
			continue
		}
		if err := f.Write(op.Page); err != nil {
			if capacityExhausted(err) {
				break
			}
			return EndurancePoint{}, err
		}
		p.Lifetime++
	}
	p.Capped = p.Lifetime >= cap
	st := f.Stats()
	p.BadBlocks = st.BadBlocks
	p.ProgramRetries = st.ProgramRetries
	minErase, maxE, _ := dev.BlocksEndurance()
	p.EraseSpread = maxE - minErase
	return p, nil
}
