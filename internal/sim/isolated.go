package sim

import (
	"fmt"

	"geckoftl/internal/bitmap"
	"geckoftl/internal/flash"
	"geckoftl/internal/gecko"
	"geckoftl/internal/metastore"
	"geckoftl/internal/pvb"
	"geckoftl/internal/workload"
)

// validityScheme is the page-validity structure measured by the isolated
// experiments of Sections 5.1 and 5.2 (Logarithmic Gecko under different
// tunings, or the flash-resident PVB baseline).
type validityScheme interface {
	Update(addr flash.Addr) error
	RecordErase(block flash.BlockID) error
	Query(block flash.BlockID) (*bitmap.Bitmap, error)
	RAMBytes() int64
}

// IsolatedOptions configures an isolated page-validity experiment: the
// paper's Sections 5.1 and 5.2 drive Logarithmic Gecko and a flash-resident
// PVB with the invalidation stream of a uniformly random update workload and
// measure only the IO of the page-validity structure, omitting user-data and
// translation-metadata IO "to enable an apples to apples comparison".
type IsolatedOptions struct {
	// UserBlocks is the number of blocks holding user data.
	UserBlocks int
	// MetaBlocks is the number of blocks reserved for the page-validity
	// structure's own pages.
	MetaBlocks int
	// PagesPerBlock and PageSize are the device geometry (B and P).
	PagesPerBlock int
	PageSize      int
	// OverProvision is R; it controls how often garbage-collection runs.
	OverProvision float64
	// Scheme builds the structure under test over the given store. Use
	// GeckoScheme or FlashPVBScheme.
	Scheme SchemeBuilder
	// Workload generates logical updates; nil means uniform random with
	// seed 1.
	Workload workload.Generator
	// WarmupWrites and MeasureWrites delimit the measured window.
	WarmupWrites, MeasureWrites int64
	// Seed seeds the default workload.
	Seed int64
}

// SchemeBuilder constructs a page-validity structure over a metadata store.
type SchemeBuilder struct {
	// Name labels the scheme in results.
	Name string
	// Build creates the structure for a device with the given number of
	// user blocks, pages per block and page size, storing its pages in the
	// given store.
	Build func(userBlocks, pagesPerBlock, pageSize int, store metastore.Storage) (validityScheme, error)
}

// GeckoScheme builds Logarithmic Gecko with the given size ratio and
// partitioning factor (0 selects the recommended factor).
func GeckoScheme(sizeRatio, partitionFactor int) SchemeBuilder {
	name := fmt.Sprintf("gecko(T=%d", sizeRatio)
	if partitionFactor > 0 {
		name += fmt.Sprintf(",S=%d", partitionFactor)
	}
	name += ")"
	return SchemeBuilder{
		Name: name,
		Build: func(userBlocks, pagesPerBlock, pageSize int, store metastore.Storage) (validityScheme, error) {
			cfg := gecko.DefaultConfig(userBlocks, pagesPerBlock, pageSize)
			cfg.SizeRatio = sizeRatio
			if partitionFactor > 0 {
				cfg.PartitionFactor = partitionFactor
			}
			return gecko.New(cfg, store)
		},
	}
}

// FlashPVBScheme builds the flash-resident PVB baseline.
func FlashPVBScheme() SchemeBuilder {
	return SchemeBuilder{
		Name: "flash-pvb",
		Build: func(userBlocks, pagesPerBlock, pageSize int, store metastore.Storage) (validityScheme, error) {
			return pvb.NewFlashPVB(userBlocks, pagesPerBlock, pageSize, store)
		},
	}
}

// IsolatedResult is the outcome of an isolated page-validity experiment.
type IsolatedResult struct {
	Name string
	// Writes is the number of logical updates measured.
	Writes int64
	// FlashReads and FlashWrites are the flash IOs the structure issued in
	// the measured window (the top part of Figure 9 reports these counts
	// per interval of application writes).
	FlashReads, FlashWrites int64
	// WA is the structure's contribution to write-amplification.
	WA float64
	// GCQueries is the number of garbage-collection operations (each issues
	// one query and one erase record).
	GCQueries int64
	// RAMBytes is the structure's integrated-RAM footprint.
	RAMBytes int64
}

// String renders one row.
func (r IsolatedResult) String() string {
	return fmt.Sprintf("%-16s WA=%.4f reads=%d writes=%d gc=%d ram=%dB",
		r.Name, r.WA, r.FlashReads, r.FlashWrites, r.GCQueries, r.RAMBytes)
}

// RunIsolated drives the invalidation stream of the workload through the
// page-validity structure alone, with a minimal in-memory page mapping and a
// greedy garbage-collector supplying the update and GC-query pattern a real
// FTL would generate. Only the structure's own flash IO is charged.
func RunIsolated(opts IsolatedOptions) (IsolatedResult, error) {
	if opts.UserBlocks <= 0 || opts.MetaBlocks <= 0 || opts.PagesPerBlock <= 0 || opts.PageSize <= 0 {
		return IsolatedResult{}, fmt.Errorf("sim: isolated geometry must be positive: %+v", opts)
	}
	if opts.MeasureWrites <= 0 {
		return IsolatedResult{}, fmt.Errorf("sim: measure writes must be positive")
	}
	if opts.OverProvision <= 0 || opts.OverProvision >= 1 {
		opts.OverProvision = 0.7
	}

	cfg := flash.ScaledConfig(opts.UserBlocks + opts.MetaBlocks)
	cfg.PagesPerBlock = opts.PagesPerBlock
	cfg.PageSize = opts.PageSize
	cfg.OverProvision = opts.OverProvision
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		return IsolatedResult{}, err
	}
	var metaIDs []flash.BlockID
	for i := opts.UserBlocks; i < opts.UserBlocks+opts.MetaBlocks; i++ {
		metaIDs = append(metaIDs, flash.BlockID(i))
	}
	store, err := metastore.NewBlockStore(dev, metaIDs, flash.BlockGecko, flash.PurposePageValidity)
	if err != nil {
		return IsolatedResult{}, err
	}
	scheme, err := opts.Scheme.Build(opts.UserBlocks, opts.PagesPerBlock, opts.PageSize, store)
	if err != nil {
		return IsolatedResult{}, err
	}

	logicalPages := int64(opts.OverProvision * float64(opts.UserBlocks*opts.PagesPerBlock))
	gen := opts.Workload
	if gen == nil {
		gen = workload.MustNewUniform(logicalPages, opts.Seed+1)
	}

	driver := &isolatedDriver{
		scheme:        scheme,
		blocks:        opts.UserBlocks,
		pagesPerBlock: opts.PagesPerBlock,
		mapping:       make([]flash.PPN, logicalPages),
		ownerOf:       make([]flash.LPN, opts.UserBlocks*opts.PagesPerBlock),
		valid:         make([]int, opts.UserBlocks),
		writePtr:      make([]int, opts.UserBlocks),
	}
	for i := range driver.mapping {
		driver.mapping[i] = flash.InvalidPPN
	}
	for i := range driver.ownerOf {
		driver.ownerOf[i] = flash.InvalidLPN
	}

	warmup := opts.WarmupWrites
	if warmup == 0 {
		warmup = 2 * logicalPages
	}
	for i := int64(0); i < warmup; i++ {
		if err := driver.write(gen.Next().Page); err != nil {
			return IsolatedResult{}, fmt.Errorf("sim: isolated warm-up: %w", err)
		}
	}
	dev.ResetCounters()
	gcBefore := driver.gcOps
	for i := int64(0); i < opts.MeasureWrites; i++ {
		if err := driver.write(gen.Next().Page); err != nil {
			return IsolatedResult{}, fmt.Errorf("sim: isolated measurement: %w", err)
		}
	}

	counters := dev.Counters()
	delta := cfg.Latency.WriteReadRatio()
	return IsolatedResult{
		Name:        opts.Scheme.Name,
		Writes:      opts.MeasureWrites,
		FlashReads:  counters.Count(flash.OpPageRead, flash.PurposePageValidity),
		FlashWrites: counters.Count(flash.OpPageWrite, flash.PurposePageValidity),
		WA:          counters.PurposeWriteAmplification(flash.PurposePageValidity, opts.MeasureWrites, delta),
		GCQueries:   driver.gcOps - gcBefore,
		RAMBytes:    scheme.RAMBytes(),
	}, nil
}

// isolatedDriver is the minimal in-memory FTL skeleton that generates the
// update and GC-query stream for the isolated experiments. Its own
// bookkeeping is free (it models RAM-resident state that every FTL has); only
// the page-validity structure's IO hits the device.
type isolatedDriver struct {
	scheme        validityScheme
	blocks        int
	pagesPerBlock int

	mapping  []flash.PPN // lpn -> ppn
	ownerOf  []flash.LPN // ppn -> lpn (InvalidLPN when free or stale)
	valid    []int       // valid pages per block
	writePtr []int       // next free offset per block

	active int
	gcOps  int64
}

// freeBlockCount returns the number of completely unwritten blocks other than
// the active one.
func (d *isolatedDriver) freeBlockCount() int {
	n := 0
	for i := 0; i < d.blocks; i++ {
		if i != d.active && d.writePtr[i] == 0 {
			n++
		}
	}
	return n
}

// write updates one logical page: allocate the next free user page,
// invalidate the before-image in the page-validity structure, and
// garbage-collect when free space runs low.
func (d *isolatedDriver) write(lpn flash.LPN) error {
	if err := d.gcIfNeeded(); err != nil {
		return err
	}
	// Invalidate the before-image.
	if old := d.mapping[lpn]; old != flash.InvalidPPN {
		d.ownerOf[old] = flash.InvalidLPN
		block := flash.BlockOf(old, d.pagesPerBlock)
		d.valid[block]--
		if err := d.scheme.Update(flash.Decompose(old, d.pagesPerBlock)); err != nil {
			return err
		}
	}
	ppn, err := d.allocate()
	if err != nil {
		return err
	}
	d.mapping[lpn] = ppn
	d.ownerOf[ppn] = lpn
	return nil
}

// allocate returns the next free user page in the active block, moving to a
// fresh block when it fills up.
func (d *isolatedDriver) allocate() (flash.PPN, error) {
	if d.writePtr[d.active] >= d.pagesPerBlock {
		next := -1
		for i := 0; i < d.blocks; i++ {
			if i != d.active && d.writePtr[i] == 0 {
				next = i
				break
			}
		}
		if next < 0 {
			return flash.InvalidPPN, fmt.Errorf("sim: isolated driver out of free blocks")
		}
		d.active = next
	}
	offset := d.writePtr[d.active]
	d.writePtr[d.active]++
	d.valid[d.active]++
	return flash.PPNOf(flash.BlockID(d.active), offset, d.pagesPerBlock), nil
}

// gcIfNeeded reclaims blocks while few free blocks remain: the block with the
// fewest valid pages is chosen, one GC query and one erase record hit the
// structure under test, and live pages migrate within the in-memory mapping
// (their IO is deliberately not charged, per the apples-to-apples comparison
// of Section 5.1).
func (d *isolatedDriver) gcIfNeeded() error {
	for d.freeBlockCount() <= 2 {
		victim := -1
		for i := 0; i < d.blocks; i++ {
			if i == d.active || d.writePtr[i] < d.pagesPerBlock {
				continue
			}
			if victim < 0 || d.valid[i] < d.valid[victim] {
				victim = i
			}
		}
		if victim < 0 {
			return fmt.Errorf("sim: isolated driver found no GC victim")
		}
		d.gcOps++
		if _, err := d.scheme.Query(flash.BlockID(victim)); err != nil {
			return err
		}
		// Migrate live pages (the in-memory ownerOf map knows liveness).
		for offset := 0; offset < d.pagesPerBlock; offset++ {
			ppn := flash.PPNOf(flash.BlockID(victim), offset, d.pagesPerBlock)
			lpn := d.ownerOf[ppn]
			if lpn == flash.InvalidLPN {
				continue
			}
			d.ownerOf[ppn] = flash.InvalidLPN
			d.valid[victim]--
			newPPN, err := d.allocate()
			if err != nil {
				return err
			}
			d.mapping[lpn] = newPPN
			d.ownerOf[newPPN] = lpn
		}
		// Erase the victim.
		d.writePtr[victim] = 0
		d.valid[victim] = 0
		if err := d.scheme.RecordErase(flash.BlockID(victim)); err != nil {
			return err
		}
	}
	return nil
}
