package sim

import "testing"

// TestEnduranceSweepTrends pins the endurance experiment's two directional
// claims at quick scale: device lifetime strictly shrinks as the injected
// fault rate grows (at fixed policy), and wear-aware allocation plus
// wear-leveling strictly outlives LIFO reuse (at fixed fault rate) on a
// skewed workload. The sweep is fully deterministic — seeded workload,
// seeded fault hazards nested across rates — so strict inequalities are
// stable, not flaky.
func TestEnduranceSweepTrends(t *testing.T) {
	points, err := EnduranceSweep(EnduranceSweepOptions{Scale: QuickScale()})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("got %d points, want 6 (2 policies x 3 fault rates)", len(points))
	}
	byPolicy := map[string][]EndurancePoint{}
	for _, p := range points {
		if p.Capped {
			t.Errorf("%v hit the write cap; lifetime is not a death", p)
		}
		if p.Lifetime <= 0 {
			t.Errorf("%v died before serving a single write", p)
		}
		byPolicy[p.Policy] = append(byPolicy[p.Policy], p)
	}
	for policy, pts := range byPolicy {
		for i := 1; i < len(pts); i++ {
			if pts[i].FaultRate <= pts[i-1].FaultRate {
				t.Fatalf("%s: fault rates not increasing: %v", policy, pts)
			}
			if pts[i].Lifetime >= pts[i-1].Lifetime {
				t.Errorf("%s: lifetime %d at fault=%.2f not below %d at fault=%.2f",
					policy, pts[i].Lifetime, pts[i].FaultRate, pts[i-1].Lifetime, pts[i-1].FaultRate)
			}
		}
		// Faults leave damage behind: nonzero rates must show retries.
		for _, p := range pts {
			if p.FaultRate > 0 && p.ProgramRetries == 0 {
				t.Errorf("%s: fault=%.2f recorded no program retries", policy, p.FaultRate)
			}
		}
	}
	base, wear := byPolicy["baseline"], byPolicy["wear-aware"]
	if len(base) != 3 || len(wear) != 3 {
		t.Fatalf("policies unbalanced: baseline=%d wear-aware=%d", len(base), len(wear))
	}
	for i := range base {
		if wear[i].Lifetime <= base[i].Lifetime {
			t.Errorf("fault=%.2f: wear-aware lifetime %d does not beat baseline %d",
				base[i].FaultRate, wear[i].Lifetime, base[i].Lifetime)
		}
	}
	// With no faults injected, wear-aware allocation must also spend the
	// budget more evenly than LIFO reuse.
	if wear[0].EraseSpread >= base[0].EraseSpread {
		t.Errorf("fault-free erase spread: wear-aware %d not below baseline %d",
			wear[0].EraseSpread, base[0].EraseSpread)
	}
}
