package sim

import (
	"fmt"
	"strings"
	"time"

	"geckoftl/internal/ftl"
	"geckoftl/internal/model"
	"geckoftl/internal/workload"
)

// ExperimentScale controls how much work the simulation experiments do. The
// Quick scale is used by tests; the Full scale by the benchmark harness and
// the geckobench tool.
type ExperimentScale struct {
	// Device is the simulated device geometry.
	Device DeviceSpec
	// MeasureWrites is the size of the measured window.
	MeasureWrites int64
	// CacheEntries is the LRU cache capacity used by FTL-level experiments.
	CacheEntries int
	// Seed seeds the workloads.
	Seed int64
}

// QuickScale is small enough for unit tests.
func QuickScale() ExperimentScale {
	return ExperimentScale{
		Device:        DeviceSpec{Blocks: 128, PagesPerBlock: 16, PageSize: 512, OverProvision: 0.7},
		MeasureWrites: 4000,
		CacheEntries:  256,
		Seed:          1,
	}
}

// FullScale is the default scale of the benchmark harness and geckobench.
func FullScale() ExperimentScale {
	return ExperimentScale{
		Device:        DefaultDeviceSpec(),
		MeasureWrites: 40000,
		CacheEntries:  1024,
		Seed:          1,
	}
}

// Figure9Row is one bar group of Figure 9: a page-validity scheme with its
// internal IO counts and write-amplification under uniformly random updates.
type Figure9Row struct {
	IsolatedResult
}

// Figure9 compares Logarithmic Gecko under size ratios T = 2..32 against the
// flash-resident PVB baseline (Section 5.1). Logarithmic Gecko must beat the
// baseline at every T, and T = 2 should be (close to) the best tuning.
func Figure9(scale ExperimentScale) ([]Figure9Row, error) {
	schemes := []SchemeBuilder{FlashPVBScheme()}
	for _, t := range []int{2, 4, 8, 16, 32} {
		schemes = append(schemes, GeckoScheme(t, 0))
	}
	var rows []Figure9Row
	for _, s := range schemes {
		res, err := RunIsolated(IsolatedOptions{
			UserBlocks:    scale.Device.Blocks,
			MetaBlocks:    scale.Device.Blocks / 2,
			PagesPerBlock: scale.Device.PagesPerBlock,
			PageSize:      scale.Device.PageSize,
			OverProvision: scale.Device.OverProvision,
			Scheme:        s,
			MeasureWrites: scale.MeasureWrites,
			Seed:          scale.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("sim: figure 9 (%s): %w", s.Name, err)
		}
		rows = append(rows, Figure9Row{res})
	}
	return rows, nil
}

// Figure10Row is one point of Figure 10: write-amplification for a block size
// B and an entry-partitioning factor S.
type Figure10Row struct {
	BlockSize       int
	PartitionFactor int
	WA              float64
}

// Figure10 shows that entry-partitioning makes Logarithmic Gecko's
// write-amplification independent of the block size B (Section 5.2): without
// partitioning (S = 1) WA grows with B, with the recommended S it stays flat,
// and with excessive S it grows again because of key space-amplification.
// The number of blocks K is held fixed while B grows, as in the paper.
func Figure10(scale ExperimentScale) ([]Figure10Row, error) {
	var rows []Figure10Row
	blockSizes := []int{16, 32, 64, 128}
	for _, b := range blockSizes {
		for _, s := range []int{1, 0, b / 2} { // 0 selects the recommended factor
			res, err := RunIsolated(IsolatedOptions{
				UserBlocks:    scale.Device.Blocks,
				MetaBlocks:    scale.Device.Blocks / 2,
				PagesPerBlock: b,
				PageSize:      scale.Device.PageSize,
				OverProvision: scale.Device.OverProvision,
				Scheme:        GeckoScheme(2, s),
				MeasureWrites: scale.MeasureWrites,
				Seed:          scale.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("sim: figure 10 (B=%d S=%d): %w", b, s, err)
			}
			factor := s
			if factor == 0 {
				factor = -1 // recommended
			}
			rows = append(rows, Figure10Row{BlockSize: b, PartitionFactor: factor, WA: res.WA})
		}
	}
	return rows, nil
}

// Figure11Row is one point of Figure 11: write-amplification versus the
// number of blocks K for Logarithmic Gecko and the flash-resident PVB.
type Figure11Row struct {
	Blocks  int
	GeckoWA float64
	PVBWA   float64
}

// Figure11 scales the device capacity (number of blocks K) and shows that
// Logarithmic Gecko's write-amplification grows only logarithmically while
// the flash PVB's stays flat but far higher (Section 5.2, "Capacity").
func Figure11(scale ExperimentScale) ([]Figure11Row, error) {
	var rows []Figure11Row
	for _, k := range []int{64, 128, 256, 512} {
		row := Figure11Row{Blocks: k}
		for _, s := range []SchemeBuilder{GeckoScheme(2, 0), FlashPVBScheme()} {
			res, err := RunIsolated(IsolatedOptions{
				UserBlocks:    k,
				MetaBlocks:    k / 2,
				PagesPerBlock: scale.Device.PagesPerBlock,
				PageSize:      scale.Device.PageSize,
				OverProvision: scale.Device.OverProvision,
				Scheme:        s,
				MeasureWrites: scale.MeasureWrites,
				Seed:          scale.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("sim: figure 11 (K=%d, %s): %w", k, s.Name, err)
			}
			if strings.HasPrefix(s.Name, "gecko") {
				row.GeckoWA = res.WA
			} else {
				row.PVBWA = res.WA
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure12Row is one point of Figure 12: Logarithmic Gecko's IO under a given
// over-provisioning ratio R.
type Figure12Row struct {
	OverProvision float64
	WA            float64
	GCQueries     int64
	FlashReads    int64
}

// Figure12 varies over-provisioning, which controls how frequently
// garbage-collection (and therefore GC queries) runs relative to updates
// (Section 5.2, "Over-Provisioning"). Less over-provisioning means more GC
// queries, but the overall increase in write-amplification stays small
// because flash reads are cheap relative to writes.
func Figure12(scale ExperimentScale) ([]Figure12Row, error) {
	var rows []Figure12Row
	for _, r := range []float64{0.5, 0.6, 0.7, 0.8, 0.9} {
		res, err := RunIsolated(IsolatedOptions{
			UserBlocks:    scale.Device.Blocks,
			MetaBlocks:    scale.Device.Blocks / 2,
			PagesPerBlock: scale.Device.PagesPerBlock,
			PageSize:      scale.Device.PageSize,
			OverProvision: r,
			Scheme:        GeckoScheme(2, 0),
			MeasureWrites: scale.MeasureWrites,
			Seed:          scale.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("sim: figure 12 (R=%.1f): %w", r, err)
		}
		rows = append(rows, Figure12Row{OverProvision: r, WA: res.WA, GCQueries: res.GCQueries, FlashReads: res.FlashReads})
	}
	return rows, nil
}

// Figure13WA runs the five FTLs under uniformly random writes and reports the
// write-amplification breakdown of Figure 13 (bottom).
func Figure13WA(scale ExperimentScale) ([]Result, error) {
	builders := []struct {
		name string
		opts ftl.Options
	}{
		{"DFTL", ftl.DFTLOptions(scale.CacheEntries)},
		{"LazyFTL", ftl.LazyFTLOptions(scale.CacheEntries)},
		{"uFTL", ftl.MuFTLOptions(scale.CacheEntries)},
		{"IB-FTL", ftl.IBFTLOptions(scale.CacheEntries)},
		{"GeckoFTL", ftl.GeckoFTLOptions(scale.CacheEntries)},
	}
	var out []Result
	for _, b := range builders {
		res, err := Run(RunOptions{
			Device:        scale.Device,
			FTLOptions:    b.opts,
			Workload:      nil,
			MeasureWrites: scale.MeasureWrites,
		})
		if err != nil {
			return nil, fmt.Errorf("sim: figure 13 WA (%s): %w", b.name, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// Figure13RAM returns the analytical integrated-RAM breakdown (Figure 13 top)
// at the paper's full 2 TB scale.
func Figure13RAM() []model.RAMBreakdown { return model.RAMAll(model.Default()) }

// Figure13Recovery returns the analytical recovery-time breakdown (Figure 13
// middle) at the paper's full 2 TB scale.
func Figure13Recovery() []model.RecoveryBreakdown { return model.RecoveryAll(model.Default()) }

// Figure1 returns the capacity sweep of Figure 1 (LazyFTL RAM requirement and
// recovery time versus device capacity).
func Figure1() []model.CapacityPoint {
	capacities := []int64{64 << 30, 128 << 30, 256 << 30, 512 << 30, 1 << 40, 2 << 40, 4 << 40}
	return model.Figure1(model.Default(), capacities)
}

// Table1 returns the evaluated Table 1 at the paper's full 2 TB scale.
func Table1() []model.Table1Row { return model.Table1(model.Default()) }

// Figure14Row is one bar group of Figure 14: an FTL given the same total RAM
// budget, with its cache size and write-amplification breakdown.
type Figure14Row struct {
	Result
	CacheEntries int
}

// Figure14 reproduces the better-RAM-utilization experiment of Section 5.4:
// all three FTLs receive the same RAM budget; DFTL spends most of it on the
// RAM-resident PVB, while µ-FTL and GeckoFTL give it to the LRU cache. All
// three use GeckoFTL's garbage-collection scheme, as in the paper. The
// experiment uses a device with enough blocks that the PVB dwarfs the
// baseline cache, which is what makes the trade-off interesting at full
// scale (64 MB of PVB versus a 4 MB cache).
func Figure14(scale ExperimentScale) ([]Figure14Row, error) {
	device := DeviceSpec{
		Blocks:        scale.Device.Blocks * 2,
		PagesPerBlock: 32,
		PageSize:      scale.Device.PageSize,
		OverProvision: scale.Device.OverProvision,
	}
	cfg := device.Config()
	pvbBytes := int64(cfg.Blocks) * int64((cfg.PagesPerBlock+7)/8)
	pvbEntries := int(pvbBytes / 8)
	baseCache := pvbEntries / 4
	if baseCache < 32 {
		baseCache = 32
	}
	bigCache := baseCache + pvbEntries

	mk := func(name string, opts ftl.Options, cache int) (Figure14Row, error) {
		opts.CacheEntries = cache
		// Same garbage-collection scheme for all three (Section 5.4).
		opts.VictimPolicy = ftl.VictimMetadataAware
		res, err := Run(RunOptions{
			Device:        device,
			FTLOptions:    opts,
			MeasureWrites: scale.MeasureWrites,
		})
		if err != nil {
			return Figure14Row{}, fmt.Errorf("sim: figure 14 (%s): %w", name, err)
		}
		res.Name = name
		return Figure14Row{Result: res, CacheEntries: cache}, nil
	}

	var rows []Figure14Row
	dftl, err := mk("DFTL", ftl.DFTLOptions(baseCache), baseCache)
	if err != nil {
		return nil, err
	}
	rows = append(rows, dftl)
	mu, err := mk("uFTL", ftl.MuFTLOptions(bigCache), bigCache)
	if err != nil {
		return nil, err
	}
	rows = append(rows, mu)
	gecko, err := mk("GeckoFTL", ftl.GeckoFTLOptions(bigCache), bigCache)
	if err != nil {
		return nil, err
	}
	rows = append(rows, gecko)
	return rows, nil
}

// RecoveryResult is the measured (simulated) recovery cost of one FTL,
// complementing the analytical Figure 13 middle with an executable check.
type RecoveryResult struct {
	Name                    string
	Duration                time.Duration
	SpareReads              int64
	PageReads               int64
	PageWrites              int64
	RecoveredMappingEntries int
	UsedBattery             bool
}

// RecoverySimulation crashes each FTL mid-workload and measures its recovery.
func RecoverySimulation(scale ExperimentScale) ([]RecoveryResult, error) {
	builders := []struct {
		name string
		opts ftl.Options
	}{
		{"DFTL", ftl.DFTLOptions(scale.CacheEntries)},
		{"LazyFTL", ftl.LazyFTLOptions(scale.CacheEntries)},
		{"uFTL", ftl.MuFTLOptions(scale.CacheEntries)},
		{"IB-FTL", ftl.IBFTLOptions(scale.CacheEntries)},
		{"GeckoFTL", ftl.GeckoFTLOptions(scale.CacheEntries)},
	}
	var out []RecoveryResult
	for _, b := range builders {
		dev, err := scale.Device.NewDevice()
		if err != nil {
			return nil, err
		}
		f, err := ftl.New(dev, b.opts)
		if err != nil {
			return nil, err
		}
		gen, err := workload.NewUniform(f.LogicalPages(), scale.Seed)
		if err != nil {
			return nil, err
		}
		for i := int64(0); i < scale.MeasureWrites; i++ {
			if err := f.Write(gen.Next().Page); err != nil {
				return nil, fmt.Errorf("sim: recovery workload (%s): %w", b.name, err)
			}
		}
		if err := f.PowerFail(); err != nil {
			return nil, err
		}
		report, err := f.Recover()
		if err != nil {
			return nil, fmt.Errorf("sim: recovery (%s): %w", b.name, err)
		}
		out = append(out, RecoveryResult{
			Name:                    b.name,
			Duration:                report.Duration,
			SpareReads:              report.SpareReads,
			PageReads:               report.PageReads,
			PageWrites:              report.PageWrites,
			RecoveredMappingEntries: report.RecoveredMappingEntries,
			UsedBattery:             report.UsedBattery,
		})
	}
	return out, nil
}

// HeadlineSummary evaluates the paper's three headline claims: the reduction
// in page-validity RAM, the reduction in recovery time, and the reduction in
// the write-amplification contributed by page-validity metadata relative to a
// flash-resident PVB.
type HeadlineSummary struct {
	RAMReduction        float64
	RecoveryReduction   float64
	ValidityWAReduction float64
}

// Headlines computes the summary: the RAM and recovery reductions come from
// the analytical models at full 2 TB scale, the write-amplification reduction
// from the isolated simulation at the given scale.
func Headlines(scale ExperimentScale) (HeadlineSummary, error) {
	p := model.Default()
	out := HeadlineSummary{
		RAMReduction:      model.RAMReductionVsPVB(model.GeckoFTL, p),
		RecoveryReduction: model.RecoveryReductionVsLazyFTL(model.GeckoFTL, p),
	}
	gecko, err := RunIsolated(IsolatedOptions{
		UserBlocks:    scale.Device.Blocks,
		MetaBlocks:    scale.Device.Blocks / 2,
		PagesPerBlock: scale.Device.PagesPerBlock,
		PageSize:      scale.Device.PageSize,
		OverProvision: scale.Device.OverProvision,
		Scheme:        GeckoScheme(2, 0),
		MeasureWrites: scale.MeasureWrites,
		Seed:          scale.Seed,
	})
	if err != nil {
		return out, err
	}
	pvbRes, err := RunIsolated(IsolatedOptions{
		UserBlocks:    scale.Device.Blocks,
		MetaBlocks:    scale.Device.Blocks / 2,
		PagesPerBlock: scale.Device.PagesPerBlock,
		PageSize:      scale.Device.PageSize,
		OverProvision: scale.Device.OverProvision,
		Scheme:        FlashPVBScheme(),
		MeasureWrites: scale.MeasureWrites,
		Seed:          scale.Seed,
	})
	if err != nil {
		return out, err
	}
	if pvbRes.WA > 0 {
		out.ValidityWAReduction = 1 - gecko.WA/pvbRes.WA
	}
	return out, nil
}
