package sim

import (
	"context"
	"fmt"
	"time"

	"geckoftl/internal/checkpoint"
	"geckoftl/internal/flash"
	"geckoftl/internal/ftl"
	"geckoftl/internal/model"
	"geckoftl/internal/workload"
)

// RestartPoint is one measurement of the restart sweep: the same filled,
// flushed GeckoFTL engine is restarted twice — warm, importing the metadata
// checkpoint it wrote at shutdown (zero flash IO, cost set by reading the
// checkpoint at host bandwidth), and cold, running GeckoRec as if the
// checkpoint had been lost — and the two wall-clocks are compared.
type RestartPoint struct {
	// Channels and Shards describe the topology; Blocks the device size.
	Channels, Shards, Blocks int
	// CacheEntries is the engine-wide mapping-cache budget.
	CacheEntries int
	// PreWrites is the number of logical writes issued before the shutdown.
	PreWrites int64
	// CheckpointBytes is the encoded size of the checkpoint file the warm
	// path loads.
	CheckpointBytes int64
	// WarmWallClock is the modeled warm-restart time: checkpoint read at
	// host bandwidth plus validation, with zero flash IO (the import itself
	// consumes no simulated device time).
	WarmWallClock time.Duration
	// ColdWallClock and ColdSerial are the measured GeckoRec recovery of the
	// identical state: slowest-shard critical path and summed per-shard cost.
	ColdWallClock, ColdSerial time.Duration
	// Speedup is ColdWallClock/WarmWallClock.
	Speedup float64
	// ModelWarm and ModelCold are the analytic predictions for the same
	// geometry: model.WarmRestart over the predicted checkpoint size versus
	// model.EngineRecovery for GeckoFTL. Compare trends, not absolutes.
	ModelWarm, ModelCold time.Duration
}

// RestartSweepOptions parameterizes RestartSweep.
type RestartSweepOptions struct {
	// Scale sizes the device, cache budget and workload seed.
	Scale ExperimentScale
	// Channels is the engine topology of every point. Zero means 1: warm
	// restart cost is capacity- and parallelism-independent, so the sweep
	// varies capacity and pins the topology.
	Channels int
	// CapacityFactors lists device-size multipliers. Empty means 1,2,4.
	CapacityFactors []int
}

// RestartSweep measures warm versus cold restart across device sizes. Every
// point fills a GeckoFTL engine to steady state, flushes it, exports the
// shutdown checkpoint, reboots warm from it (auditing consistency), then
// crashes and recovers the same state cold with GeckoRec. Cold recovery
// scans grow with device capacity even though GeckoRec bounds the
// per-structure work; the warm restore costs only the checkpoint read, so
// warm beats cold at every size and the gap widens with capacity.
func RestartSweep(opts RestartSweepOptions) ([]RestartPoint, error) {
	scale := opts.Scale
	channels := opts.Channels
	if channels <= 0 {
		channels = 1
	}
	if min := MinSweepShardBlocks * channels; scale.Device.Blocks < min {
		scale.Device.Blocks = min
	}
	if min := minSweepShardCache * channels; scale.CacheEntries < min {
		scale.CacheEntries = min
	}
	factors := opts.CapacityFactors
	if len(factors) == 0 {
		factors = []int{1, 2, 4}
	}

	var points []RestartPoint
	for _, factor := range factors {
		if factor < 1 {
			factor = 1
		}
		p, err := restartPoint(scale, channels, scale.Device.Blocks*factor)
		if err != nil {
			return nil, fmt.Errorf("sim: restart sweep, x%d capacity: %w", factor, err)
		}
		points = append(points, p)
	}
	return points, nil
}

// restartPoint fills one engine, shuts it down cleanly, restarts it warm
// from its checkpoint, then crashes and recovers the same state cold.
func restartPoint(scale ExperimentScale, channels, blocks int) (RestartPoint, error) {
	spec := scale.Device
	spec.Blocks = blocks
	spec.Channels = channels
	dev, err := spec.NewDevice()
	if err != nil {
		return RestartPoint{}, err
	}
	cfg := dev.Config()
	opts := ftl.GeckoFTLOptions(scale.CacheEntries / channels)
	// Scale the GC reserve with the shard size, as in recoveryPoint: a
	// Logarithmic Gecko merge must fit inside the reserve.
	if shardBlocks := blocks / channels; 4+shardBlocks/128 > opts.GCFreeBlockReserve {
		opts.GCFreeBlockReserve = 4 + shardBlocks/128
	}
	eng, err := ftl.NewEngine(dev, opts, 0)
	if err != nil {
		return RestartPoint{}, err
	}
	gen, err := workload.NewUniform(eng.LogicalPages(), scale.Seed)
	if err != nil {
		return RestartPoint{}, err
	}

	pre := 2 * eng.LogicalPages()
	batch := make([]flash.LPN, 8*cfg.Dies())
	for done := int64(0); done < pre; done += int64(len(batch)) {
		for i := range batch {
			batch[i] = gen.Next().Page
		}
		if err := eng.WriteBatch(context.Background(), batch); err != nil {
			return RestartPoint{}, fmt.Errorf("fill: %w", err)
		}
	}

	// Clean shutdown: flush dirty state, then export the checkpoint the
	// warm restart will load.
	if err := eng.Flush(); err != nil {
		return RestartPoint{}, fmt.Errorf("shutdown flush: %w", err)
	}
	file, err := eng.ExportCheckpoint()
	if err != nil {
		return RestartPoint{}, fmt.Errorf("checkpoint export: %w", err)
	}
	encoded := checkpoint.Encode(file)

	// Warm restart: reboot (drop all RAM state) and import the checkpoint.
	if err := eng.PowerFail(); err != nil {
		return RestartPoint{}, err
	}
	if err := eng.RestoreCheckpoint(file); err != nil {
		return RestartPoint{}, fmt.Errorf("warm restore: %w", err)
	}
	if err := eng.CheckConsistency(); err != nil {
		return RestartPoint{}, fmt.Errorf("post-warm-restore audit: %w", err)
	}

	// Cold restart of the identical state: crash again and run GeckoRec.
	if err := eng.PowerFail(); err != nil {
		return RestartPoint{}, err
	}
	report, err := eng.Recover()
	if err != nil {
		return RestartPoint{}, fmt.Errorf("cold recovery: %w", err)
	}
	if err := eng.CheckConsistency(); err != nil {
		return RestartPoint{}, fmt.Errorf("post-cold-recovery audit: %w", err)
	}

	warm := model.WarmRestart(int64(len(encoded)))

	mp := model.Default()
	mp.Blocks = int64(cfg.Blocks)
	mp.PagesPerBlock = int64(cfg.PagesPerBlock)
	mp.PageSize = int64(cfg.PageSize)
	mp.OverProvision = cfg.OverProvision
	mp.CacheEntries = int64(scale.CacheEntries)
	mp.Latency = cfg.Latency
	cold := model.EngineRecovery(model.GeckoFTL, mp, eng.Shards())

	speedup := 0.0
	if warm.WallClock > 0 {
		speedup = float64(report.WallClock) / float64(warm.WallClock)
	}
	return RestartPoint{
		Channels:        channels,
		Shards:          eng.Shards(),
		Blocks:          cfg.Blocks,
		CacheEntries:    scale.CacheEntries,
		PreWrites:       pre,
		CheckpointBytes: int64(len(encoded)),
		WarmWallClock:   warm.WallClock,
		ColdWallClock:   report.WallClock,
		ColdSerial:      report.SerialTime,
		Speedup:         speedup,
		ModelWarm:       model.WarmRestart(model.CheckpointSize(mp)).WallClock,
		ModelCold:       cold.WallClock,
	}, nil
}
