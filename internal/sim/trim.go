package sim

import (
	"context"
	"fmt"

	"geckoftl/internal/flash"
	"geckoftl/internal/ftl"
	"geckoftl/internal/stats"
	"geckoftl/internal/workload"
)

// TrimPoint is one row of the trim sweep: the sharded GeckoFTL engine run
// under the same write workload with an increasing fraction of host trims
// interleaved. Trims supply the garbage collector with invalid pages for
// free, so write-amplification must fall as the trim fraction rises — the
// host-visible half of the paper's GC cost model.
type TrimPoint struct {
	// Workload names the write pattern the trims are interleaved with.
	Workload string
	// TrimFraction is the fraction of host operations that are trims.
	TrimFraction float64
	// Channels is the engine width.
	Channels int
	// Writes and Trims count the logical operations of the measured window.
	Writes, Trims int64
	// TrimmedPages counts the physical before-images invalidated on behalf
	// of the window's trims (identified eagerly or by GeckoFTL's lazy path).
	TrimmedPages int64
	// WA is the measured write-amplification of the window, per logical
	// write. The trim sweep's acceptance bar: strictly decreasing in
	// TrimFraction at a fixed workload.
	WA float64
	// UserWA, TranslationWA and ValidityWA break WA down by purpose.
	UserWA, TranslationWA, ValidityWA float64
	// Write is the per-write service-time distribution of the window.
	Write stats.Summary
	// Trim is the per-trim service-time distribution of the window. Under
	// GeckoFTL trims are RAM-only until the next synchronization, so the
	// distribution is dominated by zeroes plus the occasional eviction sync
	// or GC step.
	Trim stats.Summary
}

// TrimSweepOptions parameterizes TrimSweep.
type TrimSweepOptions struct {
	// Scale sizes the device, cache budget and measured window; the device
	// and cache grow until every shard stays workable, as in ChannelSweep.
	Scale ExperimentScale
	// Channels is the engine width of every point. Zero means 2.
	Channels int
	// BatchSize is the number of operations dispatched per engine batch.
	// Zero means 2 per die.
	BatchSize int
	// Workload names the write pattern ("uniform" when empty).
	Workload string
	// TrimFractions lists the trim fractions to sweep. Empty means
	// 0, 0.1, 0.2, 0.3.
	TrimFractions []float64
}

// TrimSweep measures write-amplification of the sharded GeckoFTL engine as
// the host supplies an increasing fraction of trims. Every point runs the
// same measured window (counted in logical writes) after a
// two-full-overwrite warm-up at the point's own trim fraction, so each
// point is measured in its steady state.
func TrimSweep(opts TrimSweepOptions) ([]TrimPoint, error) {
	if opts.Scale.MeasureWrites <= 0 {
		return nil, fmt.Errorf("sim: measure writes %d must be positive", opts.Scale.MeasureWrites)
	}
	channels := opts.Channels
	if channels <= 0 {
		channels = 2
	}
	wl := opts.Workload
	if wl == "" {
		wl = "uniform"
	}
	fractions := opts.TrimFractions
	if len(fractions) == 0 {
		fractions = []float64{0, 0.1, 0.2, 0.3}
	}
	for _, f := range fractions {
		if f < 0 || f >= 1 {
			return nil, fmt.Errorf("sim: trim fraction %g out of range [0,1)", f)
		}
	}
	// Grow the device and cache once so every shard stays workable; the
	// grown geometry applies to every point (see ChannelSweep).
	if min := MinSweepShardBlocks * channels; opts.Scale.Device.Blocks < min {
		opts.Scale.Device.Blocks = min
	}
	if min := minSweepShardCache * channels; opts.Scale.CacheEntries < min {
		opts.Scale.CacheEntries = min
	}

	var points []TrimPoint
	for _, f := range fractions {
		p, err := trimPoint(opts, channels, wl, f)
		if err != nil {
			return nil, fmt.Errorf("sim: trim sweep (%s, f=%.2f): %w", wl, f, err)
		}
		points = append(points, p)
	}
	return points, nil
}

// trimPoint measures one trim fraction.
func trimPoint(opts TrimSweepOptions, channels int, wl string, fraction float64) (TrimPoint, error) {
	scale := opts.Scale
	spec := scale.Device
	spec.Channels = channels
	dev, err := spec.NewDevice()
	if err != nil {
		return TrimPoint{}, err
	}
	cfg := dev.Config()

	eng, err := ftl.NewEngine(dev, ftl.GeckoFTLOptions(scale.CacheEntries/channels), 0)
	if err != nil {
		return TrimPoint{}, err
	}
	writes, err := workload.ByName(wl, eng.LogicalPages(), scale.Seed)
	if err != nil {
		return TrimPoint{}, err
	}
	gen, err := workload.NewTrimming(writes, eng.LogicalPages(), fraction, scale.Seed+1)
	if err != nil {
		return TrimPoint{}, err
	}
	batchSize := opts.BatchSize
	if batchSize <= 0 {
		batchSize = 2 * cfg.Dies()
	}

	// pump dispatches batches until the target number of logical writes has
	// been served; interleaved trims ride along without counting.
	pump := func(target int64) error {
		var done int64
		for done < target {
			_, targets, trims := workload.SplitBatch(workload.TakeBatch(gen, batchSize))
			if len(trims) > 0 {
				if err := eng.TrimBatch(context.Background(), trims); err != nil {
					return err
				}
			}
			if len(targets) == 0 {
				continue
			}
			if err := eng.WriteBatch(context.Background(), targets); err != nil {
				return err
			}
			done += int64(len(targets))
		}
		return nil
	}

	if err := pump(2 * eng.LogicalPages()); err != nil {
		return TrimPoint{}, fmt.Errorf("warm-up: %w", err)
	}
	eng.ResetLatencyStats()
	countersBefore := dev.Counters()
	statsBefore := eng.Stats()
	if err := pump(scale.MeasureWrites); err != nil {
		return TrimPoint{}, fmt.Errorf("measurement: %w", err)
	}

	es := eng.LatencyStats()
	after := eng.Stats()
	nWrites := after.LogicalWrites - statsBefore.LogicalWrites
	counters := dev.Counters().Sub(countersBefore)
	delta := cfg.Latency.WriteReadRatio()
	return TrimPoint{
		Workload:     wl,
		TrimFraction: fraction,
		Channels:     channels,
		Writes:       nWrites,
		Trims:        after.LogicalTrims - statsBefore.LogicalTrims,
		TrimmedPages: after.TrimmedPages - statsBefore.TrimmedPages,
		WA:           counters.WriteAmplification(nWrites, delta),
		UserWA: counters.PurposeWriteAmplification(flash.PurposeUserWrite, nWrites, delta) +
			counters.PurposeWriteAmplification(flash.PurposeGCMigration, nWrites, delta),
		TranslationWA: counters.PurposeWriteAmplification(flash.PurposeTranslation, nWrites, delta),
		ValidityWA:    counters.PurposeWriteAmplification(flash.PurposePageValidity, nWrites, delta),
		Write:         es.Writes,
		Trim:          es.Trims,
	}, nil
}
