package sim

import (
	"testing"

	"geckoftl/internal/ftl"
	"geckoftl/internal/workload"
)

func quickRunOptions(opts ftl.Options) RunOptions {
	scale := QuickScale()
	return RunOptions{
		Device:        scale.Device,
		FTLOptions:    opts,
		MeasureWrites: scale.MeasureWrites,
	}
}

func TestRunValidatesArguments(t *testing.T) {
	opts := quickRunOptions(ftl.GeckoFTLOptions(128))
	opts.MeasureWrites = 0
	if _, err := Run(opts); err == nil {
		t.Error("zero measure writes accepted")
	}
	bad := quickRunOptions(ftl.Options{Scheme: ftl.SchemeGecko})
	if _, err := Run(bad); err == nil {
		t.Error("invalid FTL options accepted")
	}
	badDev := quickRunOptions(ftl.GeckoFTLOptions(128))
	badDev.Device.Blocks = 0
	if _, err := Run(badDev); err == nil {
		t.Error("invalid device accepted")
	}
}

func TestRunProducesSensibleResult(t *testing.T) {
	res, err := Run(quickRunOptions(ftl.GeckoFTLOptions(256)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "GeckoFTL" {
		t.Errorf("name = %q", res.Name)
	}
	if res.Writes != QuickScale().MeasureWrites {
		t.Errorf("writes = %d", res.Writes)
	}
	// Write-amplification includes the application write itself, so it must
	// be at least 1 and is typically below 4 for a healthy configuration.
	if res.WA < 1 || res.WA > 6 {
		t.Errorf("WA = %v out of sane range", res.WA)
	}
	if res.UserWA <= 0 || res.TranslationWA <= 0 || res.ValidityWA <= 0 {
		t.Errorf("breakdown has zero component: %+v", res)
	}
	if res.UserWA+res.TranslationWA+res.ValidityWA > res.WA+0.01 {
		t.Errorf("breakdown exceeds total: %+v", res)
	}
	if res.GCOperations == 0 {
		t.Error("no GC in steady state")
	}
	if res.RAMBytes <= 0 || res.SimulatedTime <= 0 {
		t.Errorf("missing RAM/time: %+v", res)
	}
	if res.String() == "" || FormatTable("x", []Result{res}) == "" {
		t.Error("formatting is empty")
	}
}

func TestRunWithMixedWorkloadCountsOnlyWrites(t *testing.T) {
	scale := QuickScale()
	opts := quickRunOptions(ftl.DFTLOptions(256))
	cfg := scale.Device.Config()
	logical := int64(cfg.LogicalPages())
	opts.Workload = workload.MustNewMixed(workload.MustNewUniform(logical, 3), logical, 0.4, 4)
	opts.WarmupWrites = logical
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Writes != scale.MeasureWrites {
		t.Errorf("measured writes = %d, want %d", res.Writes, scale.MeasureWrites)
	}
}

func TestRunIsolatedValidation(t *testing.T) {
	if _, err := RunIsolated(IsolatedOptions{}); err == nil {
		t.Error("empty isolated options accepted")
	}
	if _, err := RunIsolated(IsolatedOptions{UserBlocks: 16, MetaBlocks: 8, PagesPerBlock: 8, PageSize: 256, Scheme: GeckoScheme(2, 0)}); err == nil {
		t.Error("zero measure writes accepted")
	}
}

func TestIsolatedGeckoBeatsFlashPVB(t *testing.T) {
	scale := QuickScale()
	run := func(s SchemeBuilder) IsolatedResult {
		res, err := RunIsolated(IsolatedOptions{
			UserBlocks:    scale.Device.Blocks,
			MetaBlocks:    scale.Device.Blocks / 2,
			PagesPerBlock: scale.Device.PagesPerBlock,
			PageSize:      scale.Device.PageSize,
			OverProvision: 0.7,
			Scheme:        s,
			MeasureWrites: scale.MeasureWrites,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	gecko := run(GeckoScheme(2, 0))
	pvb := run(FlashPVBScheme())
	if gecko.WA >= pvb.WA {
		t.Errorf("gecko WA %.4f not below flash PVB %.4f", gecko.WA, pvb.WA)
	}
	// The flash PVB does roughly one write per update; Logarithmic Gecko
	// does a small fraction of that.
	if gecko.FlashWrites*5 > pvb.FlashWrites {
		t.Errorf("gecko writes %d not well below PVB writes %d", gecko.FlashWrites, pvb.FlashWrites)
	}
	if gecko.RAMBytes <= 0 || pvb.RAMBytes <= 0 {
		t.Error("missing RAM accounting")
	}
	if gecko.String() == "" {
		t.Error("empty string rendering")
	}
}

func TestFigure9Shape(t *testing.T) {
	rows, err := Figure9(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("figure 9 rows = %d, want 6", len(rows))
	}
	byName := map[string]Figure9Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	pvb := byName["flash-pvb"]
	for name, row := range byName {
		if name == "flash-pvb" {
			continue
		}
		if row.WA >= pvb.WA {
			t.Errorf("%s WA %.4f not below flash PVB %.4f", name, row.WA, pvb.WA)
		}
	}
	// T = 2 must be at least as good as T = 32 (the paper's conclusion that
	// small T minimizes write-amplification).
	if byName["gecko(T=2,S=4)"].WA > byName["gecko(T=32,S=4)"].WA {
		t.Errorf("T=2 WA %.4f above T=32 WA %.4f", byName["gecko(T=2,S=4)"].WA, byName["gecko(T=32,S=4)"].WA)
	}
}

func TestFigure10PartitioningFlattensBlockSizeDependence(t *testing.T) {
	rows, err := Figure10(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	// Collect WA by partitioning mode across block sizes.
	unpartitioned := map[int]float64{} // B -> WA for S=1
	recommended := map[int]float64{}   // B -> WA for recommended S
	for _, r := range rows {
		switch r.PartitionFactor {
		case 1:
			unpartitioned[r.BlockSize] = r.WA
		case -1:
			recommended[r.BlockSize] = r.WA
		}
	}
	// Without partitioning, WA at B=128 must clearly exceed WA at B=16.
	if !(unpartitioned[128] > unpartitioned[16]*1.5) {
		t.Errorf("unpartitioned WA does not grow with B: %v", unpartitioned)
	}
	// With the recommended partitioning the growth must be much smaller.
	growthUnpart := unpartitioned[128] / unpartitioned[16]
	growthRec := recommended[128] / recommended[16]
	if growthRec >= growthUnpart {
		t.Errorf("partitioning did not flatten block-size dependence: %.2fx vs %.2fx", growthRec, growthUnpart)
	}
}

func TestFigure11CapacityScaling(t *testing.T) {
	rows, err := Figure11(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("figure 11 rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.GeckoWA >= r.PVBWA {
			t.Errorf("K=%d: gecko WA %.4f not below PVB %.4f", r.Blocks, r.GeckoWA, r.PVBWA)
		}
	}
	// Gecko's WA grows (at most logarithmically) with K; the PVB's stays
	// roughly flat. Check the qualitative trend between the extremes.
	first, last := rows[0], rows[len(rows)-1]
	if last.GeckoWA < first.GeckoWA*0.8 {
		t.Errorf("gecko WA shrank with capacity: %v -> %v", first.GeckoWA, last.GeckoWA)
	}
	pvbGrowth := last.PVBWA / first.PVBWA
	if pvbGrowth > 1.3 || pvbGrowth < 0.7 {
		t.Errorf("PVB WA should be roughly capacity-independent, got growth %.2fx", pvbGrowth)
	}
}

func TestFigure12OverProvisioning(t *testing.T) {
	rows, err := Figure12(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("figure 12 rows = %d", len(rows))
	}
	// Less over-provisioning (higher R) means garbage-collection runs more
	// often, so GC queries per write increase monotonically overall.
	if rows[len(rows)-1].GCQueries <= rows[0].GCQueries {
		t.Errorf("GC queries did not increase with R: first=%d last=%d", rows[0].GCQueries, rows[len(rows)-1].GCQueries)
	}
	// Write-amplification stays low for any reasonable over-provisioning.
	for _, r := range rows {
		if r.WA > 0.6 {
			t.Errorf("R=%.1f: validity WA %.3f unexpectedly high", r.OverProvision, r.WA)
		}
	}
}

func TestFigure13WAOrdering(t *testing.T) {
	results, err := Figure13WA(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Name] = r
	}
	if len(byName) != 5 {
		t.Fatalf("figure 13 WA results = %d", len(byName))
	}
	// µ-FTL pays the most for page-validity metadata; GeckoFTL and the
	// RAM-PVB FTLs pay little (DFTL/LazyFTL pay nothing).
	if !(byName["uFTL"].ValidityWA > 5*byName["GeckoFTL"].ValidityWA) {
		t.Errorf("uFTL validity WA %.3f not well above GeckoFTL %.3f",
			byName["uFTL"].ValidityWA, byName["GeckoFTL"].ValidityWA)
	}
	if byName["DFTL"].ValidityWA != 0 {
		t.Errorf("DFTL validity WA = %v, want 0", byName["DFTL"].ValidityWA)
	}
	// GeckoFTL's overall WA is the lowest of the flash-resident-metadata
	// FTLs and no worse than the battery-backed DFTL by a wide margin.
	if byName["GeckoFTL"].WA >= byName["uFTL"].WA {
		t.Errorf("GeckoFTL WA %.3f not below uFTL %.3f", byName["GeckoFTL"].WA, byName["uFTL"].WA)
	}
	if byName["GeckoFTL"].WA >= byName["IB-FTL"].WA*1.5 {
		t.Errorf("GeckoFTL WA %.3f far above IB-FTL %.3f", byName["GeckoFTL"].WA, byName["IB-FTL"].WA)
	}
}

func TestFigure13AnalyticalParts(t *testing.T) {
	ram := Figure13RAM()
	rec := Figure13Recovery()
	if len(ram) != 5 || len(rec) != 5 {
		t.Fatalf("analytical breakdowns incomplete: %d RAM rows, %d recovery rows", len(ram), len(rec))
	}
	table := Table1()
	if len(table) != 3 {
		t.Fatalf("table 1 rows = %d", len(table))
	}
	fig1 := Figure1()
	if len(fig1) < 5 {
		t.Fatalf("figure 1 points = %d", len(fig1))
	}
}

func TestFigure14LargerCacheHelps(t *testing.T) {
	rows, err := Figure14(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Figure14Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// µ-FTL and GeckoFTL get the RAM freed by dropping the PVB as extra
	// cache.
	if byName["uFTL"].CacheEntries <= byName["DFTL"].CacheEntries {
		t.Error("uFTL did not receive a larger cache")
	}
	// With the larger cache, translation overhead drops for µ-FTL and
	// GeckoFTL relative to DFTL; GeckoFTL gets the best of both worlds: its
	// total WA is the lowest.
	if byName["GeckoFTL"].TranslationWA > byName["DFTL"].TranslationWA {
		t.Errorf("GeckoFTL translation WA %.3f above DFTL %.3f",
			byName["GeckoFTL"].TranslationWA, byName["DFTL"].TranslationWA)
	}
	if byName["GeckoFTL"].WA > byName["uFTL"].WA || byName["GeckoFTL"].WA > byName["DFTL"].WA {
		t.Errorf("GeckoFTL WA %.3f not the lowest (DFTL %.3f, uFTL %.3f)",
			byName["GeckoFTL"].WA, byName["DFTL"].WA, byName["uFTL"].WA)
	}
}

func TestRecoverySimulation(t *testing.T) {
	scale := QuickScale()
	scale.MeasureWrites = 3000
	results, err := RecoverySimulation(scale)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]RecoveryResult{}
	for _, r := range results {
		byName[r.Name] = r
	}
	if !byName["DFTL"].UsedBattery || byName["GeckoFTL"].UsedBattery {
		t.Error("battery flags wrong in recovery simulation")
	}
	// GeckoFTL's recovery must not write more pages than LazyFTL's, which
	// synchronizes its recovered entries before resuming.
	if byName["GeckoFTL"].PageWrites > byName["LazyFTL"].PageWrites {
		t.Errorf("GeckoFTL recovery writes %d above LazyFTL %d",
			byName["GeckoFTL"].PageWrites, byName["LazyFTL"].PageWrites)
	}
	for name, r := range byName {
		if r.Duration <= 0 {
			t.Errorf("%s recovery duration is zero", name)
		}
	}
}

func TestHeadlines(t *testing.T) {
	sum, err := Headlines(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if sum.RAMReduction < 0.95 {
		t.Errorf("RAM reduction = %.3f, want >= 0.95", sum.RAMReduction)
	}
	if sum.RecoveryReduction < 0.51 {
		t.Errorf("recovery reduction = %.3f, want >= 0.51", sum.RecoveryReduction)
	}
	if sum.ValidityWAReduction < 0.80 {
		t.Errorf("validity WA reduction = %.3f, want >= 0.80", sum.ValidityWAReduction)
	}
}

func TestScales(t *testing.T) {
	if QuickScale().MeasureWrites >= FullScale().MeasureWrites {
		t.Error("quick scale not smaller than full scale")
	}
	if err := FullScale().Device.Config().Validate(); err != nil {
		t.Errorf("full-scale device invalid: %v", err)
	}
	if _, err := DefaultDeviceSpec().NewDevice(); err != nil {
		t.Errorf("default device spec invalid: %v", err)
	}
}
