package sim

import (
	"context"
	"fmt"
	"time"

	"geckoftl/internal/ftl"
	"geckoftl/internal/model"
	"geckoftl/internal/stats"
	"geckoftl/internal/workload"
)

// LatencyPoint is one row of the latency sweep: the sharded GeckoFTL engine
// run under one workload with one victim policy and one GC scheduling mode,
// reporting the measured window's write-latency distribution next to the
// analytic worst-case-stall bound.
type LatencyPoint struct {
	// Workload, Policy and GCMode name the configuration of this point.
	Workload, Policy, GCMode string
	// GCPagesPerWrite is the incremental step budget (also reported for
	// inline points, where it is ignored by the FTL).
	GCPagesPerWrite int
	// Channels is the engine width.
	Channels int
	// Writes is the number of logical writes in the measured window.
	Writes int64
	// WA is the measured write-amplification of the window; incremental
	// scheduling must not buy latency with extra IO, so the sweep's
	// acceptance bar keeps it within 5% of the inline mode.
	WA float64
	// Write is the per-write service-time distribution (queueing behind the
	// die included, see ftl.EngineStats).
	Write stats.Summary
	// GCStalledWrites is the service-time distribution of writes that
	// performed garbage-collection work.
	GCStalledWrites stats.Summary
	// MaxGCStall is the largest GC stall any single write absorbed.
	MaxGCStall time.Duration
	// ModelStallBound is the analytic worst-case stall: per write under
	// incremental scheduling (model.IncrementalGCStallBound, a hard bound),
	// per victim under inline scheduling (model.InlineGCStallBound, which
	// measured inline stalls may exceed when one write reclaims several
	// victims).
	ModelStallBound time.Duration
	// GCFallbacks counts writes on which the incremental collector broke its
	// budget by falling back to inline reclaim; zero for a healthy
	// configuration, and always zero for inline points.
	GCFallbacks int64
}

// LatencySweepOptions parameterizes LatencySweep.
type LatencySweepOptions struct {
	// Scale sizes the device, cache budget and measured window. As in
	// ChannelSweep, the device and cache grow until every shard stays
	// workable, and the grown values apply to every point.
	Scale ExperimentScale
	// Channels is the engine width of every point (the sweep varies GC
	// behaviour, not topology). Zero means 2.
	Channels int
	// BatchSize is the number of writes dispatched per engine batch: the
	// queue depth the host keeps, and therefore how much queueing behind
	// earlier batchmates the recorded latencies include. Zero means 2 per
	// die, a shallow queue that keeps the tail dominated by GC stalls rather
	// than queueing noise.
	BatchSize int
	// Workloads lists the write patterns. Empty means uniform, zipfian,
	// hotcold.
	Workloads []string
	// Policies lists the victim policies. Empty means metadata-aware and
	// greedy.
	Policies []ftl.VictimPolicy
	// Modes lists the GC scheduling modes. Empty means inline and
	// incremental.
	Modes []ftl.GCMode
	// GCPagesPerWrite is the incremental step budget. Zero means
	// ftl.DefaultGCPagesPerWrite.
	GCPagesPerWrite int
}

// LatencySweep measures per-write tail latency of the sharded GeckoFTL
// engine across {GC mode} x {victim policy} x {workload}. Every point runs
// the same measured window after a two-full-overwrite warm-up, so the
// distributions reflect steady-state garbage collection. The headline
// comparison is inline versus incremental scheduling: incremental mode must
// cut the p99.9 write latency (the GC stall moves out of the tail) while
// keeping write-amplification within 5%, and its measured worst-case stall
// must stay within the analytic bound.
func LatencySweep(opts LatencySweepOptions) ([]LatencyPoint, error) {
	if opts.Scale.MeasureWrites <= 0 {
		return nil, fmt.Errorf("sim: measure writes %d must be positive", opts.Scale.MeasureWrites)
	}
	channels := opts.Channels
	if channels <= 0 {
		channels = 2
	}
	workloads := opts.Workloads
	if len(workloads) == 0 {
		workloads = []string{"uniform", "zipfian", "hotcold"}
	}
	policies := opts.Policies
	if len(policies) == 0 {
		policies = []ftl.VictimPolicy{ftl.VictimMetadataAware, ftl.VictimGreedy}
	}
	modes := opts.Modes
	if len(modes) == 0 {
		modes = []ftl.GCMode{ftl.GCInline, ftl.GCIncremental}
	}
	// Grow the device and cache once so every shard stays workable; the
	// grown geometry applies to every point (see ChannelSweep).
	if min := MinSweepShardBlocks * channels; opts.Scale.Device.Blocks < min {
		opts.Scale.Device.Blocks = min
	}
	if min := minSweepShardCache * channels; opts.Scale.CacheEntries < min {
		opts.Scale.CacheEntries = min
	}

	var points []LatencyPoint
	for _, wl := range workloads {
		for _, policy := range policies {
			for _, mode := range modes {
				p, err := latencyPoint(opts, channels, wl, policy, mode)
				if err != nil {
					return nil, fmt.Errorf("sim: latency sweep (%s, %v, %v): %w", wl, policy, mode, err)
				}
				points = append(points, p)
			}
		}
	}
	return points, nil
}

// latencyPoint measures one configuration.
func latencyPoint(opts LatencySweepOptions, channels int, wl string, policy ftl.VictimPolicy, mode ftl.GCMode) (LatencyPoint, error) {
	scale := opts.Scale
	spec := scale.Device
	spec.Channels = channels
	dev, err := spec.NewDevice()
	if err != nil {
		return LatencyPoint{}, err
	}
	cfg := dev.Config()

	ftlOpts := ftl.GeckoFTLOptions(scale.CacheEntries / channels)
	ftlOpts.VictimPolicy = policy
	ftlOpts.GCMode = mode
	ftlOpts.GCPagesPerWrite = opts.GCPagesPerWrite
	eng, err := ftl.NewEngine(dev, ftlOpts, 0)
	if err != nil {
		return LatencyPoint{}, err
	}
	gen, err := workload.ByName(wl, eng.LogicalPages(), scale.Seed)
	if err != nil {
		return LatencyPoint{}, err
	}
	batchSize := opts.BatchSize
	if batchSize <= 0 {
		batchSize = 2 * cfg.Dies()
	}

	pump := func(writes int64) error {
		var done int64
		for done < writes {
			_, targets, _ := workload.SplitBatch(workload.TakeBatch(gen, batchSize))
			if len(targets) == 0 {
				continue
			}
			if err := eng.WriteBatch(context.Background(), targets); err != nil {
				return err
			}
			done += int64(len(targets))
		}
		return nil
	}

	if err := pump(2 * eng.LogicalPages()); err != nil {
		return LatencyPoint{}, fmt.Errorf("warm-up: %w", err)
	}
	eng.ResetLatencyStats()
	countersBefore := dev.Counters()
	statsBefore := eng.Stats()
	if err := pump(scale.MeasureWrites); err != nil {
		return LatencyPoint{}, fmt.Errorf("measurement: %w", err)
	}

	es := eng.LatencyStats()
	after := eng.Stats()
	writes := after.LogicalWrites - statsBefore.LogicalWrites
	delta := cfg.Latency.WriteReadRatio()
	p := LatencyPoint{
		Workload:        wl,
		Policy:          policy.String(),
		GCMode:          mode.String(),
		GCPagesPerWrite: eng.Shard(0).Options().GCPagesPerWrite,
		Channels:        channels,
		Writes:          writes,
		WA:              dev.Counters().Sub(countersBefore).WriteAmplification(writes, delta),
		Write:           es.Writes,
		GCStalledWrites: es.GCStalledWrites,
		MaxGCStall:      es.MaxGCStall,
		GCFallbacks:     after.GCFallbacks - statsBefore.GCFallbacks,
	}
	if mode == ftl.GCIncremental {
		p.ModelStallBound = model.IncrementalGCStallBound(cfg.Latency, p.GCPagesPerWrite)
	} else {
		p.ModelStallBound = model.InlineGCStallBound(cfg.Latency, cfg.PagesPerBlock)
	}
	return p, nil
}
