package sim

import "testing"

// TestRestartSweepTrends pins the headline claim of the checkpoint
// subsystem: a warm restart from the shutdown checkpoint beats GeckoRec's
// cold recovery wall-clock at every device size, in both the measurement
// and the analytic model.
func TestRestartSweepTrends(t *testing.T) {
	points, err := RestartSweep(RestartSweepOptions{Scale: QuickScale()})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points, want 3", len(points))
	}
	for i, p := range points {
		if p.CheckpointBytes <= 0 {
			t.Errorf("point %d (blocks %d): checkpoint of %d bytes", i, p.Blocks, p.CheckpointBytes)
		}
		if p.WarmWallClock <= 0 {
			t.Errorf("point %d (blocks %d): non-positive warm wall clock %v", i, p.Blocks, p.WarmWallClock)
		}
		if p.WarmWallClock >= p.ColdWallClock {
			t.Errorf("point %d (blocks %d): warm restart %v not faster than cold recovery %v",
				i, p.Blocks, p.WarmWallClock, p.ColdWallClock)
		}
		if p.ModelWarm >= p.ModelCold {
			t.Errorf("point %d (blocks %d): model predicts warm %v not faster than cold %v",
				i, p.Blocks, p.ModelWarm, p.ModelCold)
		}
		if p.Speedup <= 1 {
			t.Errorf("point %d (blocks %d): speedup %.2f, want > 1", i, p.Blocks, p.Speedup)
		}
		if i > 0 && p.Blocks <= points[i-1].Blocks {
			t.Errorf("point %d: blocks %d not growing past %d", i, p.Blocks, points[i-1].Blocks)
		}
	}
	// The cold scan grows with capacity; the warm restore grows only with
	// the metadata footprint. The absolute gap must widen with device size.
	first, last := points[0], points[len(points)-1]
	if last.ColdWallClock-last.WarmWallClock <= first.ColdWallClock-first.WarmWallClock {
		t.Errorf("warm/cold gap did not widen with capacity: %v at %d blocks, %v at %d blocks",
			first.ColdWallClock-first.WarmWallClock, first.Blocks,
			last.ColdWallClock-last.WarmWallClock, last.Blocks)
	}
}
