package sim

import (
	"math"
	"testing"

	"geckoftl/internal/ftl"
)

// TestLatencySweepTrends pins the acceptance bars of the latency experiment:
// under zipfian skew the incremental GC scheduler must deliver strictly
// lower p99.9 write latency than inline scheduling at both victim policies,
// write-amplification must stay within 5%, and the measured worst-case GC
// stall of every incremental point must respect the analytic bound.
func TestLatencySweepTrends(t *testing.T) {
	points, err := LatencySweep(LatencySweepOptions{Scale: QuickScale()})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3*2*2 {
		t.Fatalf("expected 12 points, got %d", len(points))
	}

	type key struct{ wl, policy string }
	inline := map[key]LatencyPoint{}
	incremental := map[key]LatencyPoint{}
	for _, p := range points {
		k := key{p.Workload, p.Policy}
		switch p.GCMode {
		case ftl.GCInline.String():
			inline[k] = p
		case ftl.GCIncremental.String():
			incremental[k] = p
		default:
			t.Fatalf("unexpected GC mode %q", p.GCMode)
		}
		if p.Writes <= 0 || p.Write.Count != p.Writes {
			t.Errorf("%s/%s/%s: recorded %d write latencies for %d writes",
				p.Workload, p.Policy, p.GCMode, p.Write.Count, p.Writes)
		}
		if p.GCStalledWrites.Count == 0 {
			t.Errorf("%s/%s/%s: steady-state window saw no GC-stalled writes", p.Workload, p.Policy, p.GCMode)
		}
	}

	for k, inc := range incremental {
		inl, ok := inline[k]
		if !ok {
			t.Fatalf("no inline counterpart for %v", k)
		}
		// The incremental budget is a hard bound (no fallbacks, measured
		// stall within the model's prediction).
		if inc.GCFallbacks != 0 {
			t.Errorf("%v: incremental GC fell back to inline %d times", k, inc.GCFallbacks)
		}
		if inc.MaxGCStall > inc.ModelStallBound {
			t.Errorf("%v: measured worst-case stall %v exceeds the model bound %v",
				k, inc.MaxGCStall, inc.ModelStallBound)
		}
		// Bounded stalls must not cost IO: WA within 5% of inline on the
		// skewed workloads the acceptance bar names. Uniform random updates
		// are the adversarial worst case for the early-engagement headroom
		// (every block of lead is slack the collector cannot use), so they
		// get a looser 10% bar.
		waBar := 0.05
		if k.wl == "uniform" {
			waBar = 0.10
		}
		if math.Abs(inc.WA-inl.WA)/inl.WA > waBar {
			t.Errorf("%v: incremental WA %.4f deviates more than %.0f%% from inline WA %.4f",
				k, inc.WA, 100*waBar, inl.WA)
		}
		// The headline claim, pinned under zipfian skew: the tail moves down.
		if k.wl == "zipfian" && inc.Write.P999 >= inl.Write.P999 {
			t.Errorf("%v: incremental p99.9 %v not strictly below inline p99.9 %v",
				k, inc.Write.P999, inl.Write.P999)
		}
		// Incremental scheduling spreads the same reclaim work over more
		// writes: more writes observe a (small) stall.
		if inc.GCStalledWrites.Count <= inl.GCStalledWrites.Count {
			t.Errorf("%v: incremental stalled-write count %d not above inline %d",
				k, inc.GCStalledWrites.Count, inl.GCStalledWrites.Count)
		}
	}
}

// TestLatencySweepValidatesInput mirrors the other sweeps' input checking.
func TestLatencySweepValidatesInput(t *testing.T) {
	if _, err := LatencySweep(LatencySweepOptions{}); err == nil {
		t.Fatal("expected an error for a zero measured window")
	}
	scale := QuickScale()
	if _, err := LatencySweep(LatencySweepOptions{Scale: scale, Workloads: []string{"nope"}}); err == nil {
		t.Fatal("expected an error for an unknown workload")
	}
}
