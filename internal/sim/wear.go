package sim

import (
	"context"
	"fmt"

	"geckoftl/internal/flash"
	"geckoftl/internal/ftl"
	"geckoftl/internal/model"
	"geckoftl/internal/workload"
)

// WearPoint is one row of the wear sweep: the sharded GeckoFTL engine run
// under one workload with one victim policy and one frontier configuration,
// reporting measured write-amplification next to the device's erase-count
// spread — the endurance half of the paper's "where the FTL places data
// decides throughput and lifetime" claim.
type WearPoint struct {
	// Workload and Policy name the write pattern and victim policy.
	Workload, Policy string
	// Frontier is "single" (one user write frontier, the pre-separation
	// baseline) or "hotcold" (per-temperature frontiers driven by the heat
	// classifier).
	Frontier string
	// WearAware reports whether free blocks were handed out
	// coldest-erase-count first.
	WearAware bool
	// Channels is the engine width.
	Channels int
	// Writes is the number of logical writes in the measured window, and
	// HotWrites the subset the heat classifier routed to the hot frontier
	// (zero on single-frontier points).
	Writes, HotWrites int64
	// WA is the measured write-amplification of the window. The sweep's
	// acceptance bar: on skewed workloads, hotcold frontiers strictly below
	// the single-frontier baseline at the same policy.
	WA float64
	// UserWA, TranslationWA and ValidityWA break WA down by purpose.
	UserWA, TranslationWA, ValidityWA float64
	// Erases counts the block erases of the measured window.
	Erases int64
	// MinErase, MaxErase and EraseSpread describe the device's per-block
	// erase counts at the end of the run (cumulative: warm-up included,
	// identically for every point). EraseSpread = MaxErase - MinErase is
	// the wear-evenness figure wear-aware allocation must not worsen.
	MinErase, MaxErase, EraseSpread int
	// ModelSingleWA and ModelSeparatedWA are the analytic user-data
	// write-amplification predictions for the two frontier configurations
	// under the workload's two-class approximation (model.SeparationParams);
	// they predict the direction of the win, not the absolute level.
	ModelSingleWA, ModelSeparatedWA float64
}

// WearSweepOptions parameterizes WearSweep.
type WearSweepOptions struct {
	// Scale sizes the device, cache budget and measured window; the device
	// and cache grow until every shard stays workable, as in ChannelSweep.
	Scale ExperimentScale
	// Channels is the engine width of every point. Zero means 2.
	Channels int
	// BatchSize is the number of writes dispatched per engine batch. Zero
	// means 2 per die.
	BatchSize int
	// Workloads lists the write patterns. Empty means uniform, zipfian,
	// hotcold.
	Workloads []string
	// Policies lists the victim policies. Empty means metadata-aware and
	// cost-benefit.
	Policies []ftl.VictimPolicy
}

// wearConfig is one frontier configuration of the sweep. Wear-aware
// allocation is measured against the separated configuration (same
// frontiers, different free-block order) so the erase-spread comparison
// isolates the allocation change.
type wearConfig struct {
	frontier  string
	hotCold   bool
	wearAware bool
}

func wearConfigs() []wearConfig {
	return []wearConfig{
		{frontier: "single"},
		{frontier: "hotcold", hotCold: true},
		{frontier: "hotcold", hotCold: true, wearAware: true},
	}
}

// twoClassApprox maps a workload name to the two-class skew approximation
// the analytic model runs on: hotcold is exact by construction (20% of pages
// take 80% of writes), zipfian's top quintile carries ~90% of a
// skew-1.2 Zipf distribution's mass, and uniform has no skew.
func twoClassApprox(wl string, overProvision float64) (model.SeparationParams, bool) {
	p := model.SeparationParams{OverProvision: overProvision}
	switch wl {
	case "uniform":
		p.HotPageFraction, p.HotWriteShare = 0.5, 0.5
	case "zipfian":
		p.HotPageFraction, p.HotWriteShare = 0.2, 0.9
	case "hotcold", "hot-cold":
		p.HotPageFraction, p.HotWriteShare = 0.2, 0.8
	default:
		return p, false
	}
	return p, true
}

// WearSweep measures write-amplification and erase-count spread of the
// sharded GeckoFTL engine across {frontier configuration} x {victim policy}
// x {workload}. Every point runs the same measured window after a
// two-full-overwrite warm-up, so it reflects steady-state garbage
// collection. The headline comparisons: hot/cold separation must strictly
// lower WA on skewed workloads at the same policy, and wear-aware allocation
// must not widen the erase-count spread of the configuration it extends.
func WearSweep(opts WearSweepOptions) ([]WearPoint, error) {
	if opts.Scale.MeasureWrites <= 0 {
		return nil, fmt.Errorf("sim: measure writes %d must be positive", opts.Scale.MeasureWrites)
	}
	channels := opts.Channels
	if channels <= 0 {
		channels = 2
	}
	workloads := opts.Workloads
	if len(workloads) == 0 {
		workloads = []string{"uniform", "zipfian", "hotcold"}
	}
	policies := opts.Policies
	if len(policies) == 0 {
		policies = []ftl.VictimPolicy{ftl.VictimMetadataAware, ftl.VictimCostBenefit}
	}
	// Grow the device and cache once so every shard stays workable; the
	// grown geometry applies to every point (see ChannelSweep).
	if min := MinSweepShardBlocks * channels; opts.Scale.Device.Blocks < min {
		opts.Scale.Device.Blocks = min
	}
	if min := minSweepShardCache * channels; opts.Scale.CacheEntries < min {
		opts.Scale.CacheEntries = min
	}

	var points []WearPoint
	for _, wl := range workloads {
		for _, policy := range policies {
			for _, cfg := range wearConfigs() {
				p, err := wearPoint(opts, channels, wl, policy, cfg)
				if err != nil {
					return nil, fmt.Errorf("sim: wear sweep (%s, %v, %s): %w", wl, policy, cfg.frontier, err)
				}
				points = append(points, p)
			}
		}
	}
	return points, nil
}

// wearPoint measures one configuration.
func wearPoint(opts WearSweepOptions, channels int, wl string, policy ftl.VictimPolicy, wc wearConfig) (WearPoint, error) {
	scale := opts.Scale
	spec := scale.Device
	spec.Channels = channels
	dev, err := spec.NewDevice()
	if err != nil {
		return WearPoint{}, err
	}
	cfg := dev.Config()

	ftlOpts := ftl.GeckoFTLOptions(scale.CacheEntries / channels)
	ftlOpts.VictimPolicy = policy
	ftlOpts.HotColdSeparation = wc.hotCold
	ftlOpts.WearAwareAllocation = wc.wearAware
	eng, err := ftl.NewEngine(dev, ftlOpts, 0)
	if err != nil {
		return WearPoint{}, err
	}
	gen, err := workload.ByName(wl, eng.LogicalPages(), scale.Seed)
	if err != nil {
		return WearPoint{}, err
	}
	batchSize := opts.BatchSize
	if batchSize <= 0 {
		batchSize = 2 * cfg.Dies()
	}

	pump := func(writes int64) error {
		var done int64
		for done < writes {
			_, targets, _ := workload.SplitBatch(workload.TakeBatch(gen, batchSize))
			if len(targets) == 0 {
				continue
			}
			if err := eng.WriteBatch(context.Background(), targets); err != nil {
				return err
			}
			done += int64(len(targets))
		}
		return nil
	}

	if err := pump(2 * eng.LogicalPages()); err != nil {
		return WearPoint{}, fmt.Errorf("warm-up: %w", err)
	}
	countersBefore := dev.Counters()
	statsBefore := eng.Stats()
	if err := pump(scale.MeasureWrites); err != nil {
		return WearPoint{}, fmt.Errorf("measurement: %w", err)
	}

	after := eng.Stats()
	writes := after.LogicalWrites - statsBefore.LogicalWrites
	counters := dev.Counters().Sub(countersBefore)
	delta := cfg.Latency.WriteReadRatio()
	minErase, maxErase, _ := dev.BlocksEndurance()
	p := WearPoint{
		Workload:  wl,
		Policy:    policy.String(),
		Frontier:  wc.frontier,
		WearAware: wc.wearAware,
		Channels:  channels,
		Writes:    writes,
		HotWrites: after.HotWrites - statsBefore.HotWrites,
		WA:        counters.WriteAmplification(writes, delta),
		UserWA: counters.PurposeWriteAmplification(flash.PurposeUserWrite, writes, delta) +
			counters.PurposeWriteAmplification(flash.PurposeGCMigration, writes, delta),
		TranslationWA: counters.PurposeWriteAmplification(flash.PurposeTranslation, writes, delta),
		ValidityWA:    counters.PurposeWriteAmplification(flash.PurposePageValidity, writes, delta),
		Erases:        counters.TotalOp(flash.OpErase),
		MinErase:      minErase,
		MaxErase:      maxErase,
		EraseSpread:   maxErase - minErase,
	}
	if mp, ok := twoClassApprox(wl, cfg.OverProvision); ok {
		if p.ModelSingleWA, err = model.SingleFrontierWA(mp); err != nil {
			return WearPoint{}, err
		}
		if p.ModelSeparatedWA, err = model.SeparatedFrontierWA(mp); err != nil {
			return WearPoint{}, err
		}
	}
	return p, nil
}
