package sim

import (
	"testing"
)

// TestWearSweepTrends pins the wear sweep's two headline claims at quick
// scale: hot/cold separation strictly lowers write-amplification on skewed
// workloads (the tentpole win, with the analytic model predicting the same
// direction), and wear-aware allocation narrows — never widens — the
// erase-count spread of the configuration it extends.
func TestWearSweepTrends(t *testing.T) {
	points, err := WearSweep(WearSweepOptions{Scale: QuickScale()})
	if err != nil {
		t.Fatal(err)
	}
	// 3 workloads x 2 policies x 3 frontier configurations.
	if len(points) != 3*2*3 {
		t.Fatalf("expected 18 points, got %d", len(points))
	}

	type key struct{ wl, policy string }
	single := map[key]WearPoint{}
	separated := map[key]WearPoint{}
	separatedWear := map[key]WearPoint{}
	for _, p := range points {
		k := key{p.Workload, p.Policy}
		switch {
		case p.Frontier == "single":
			single[k] = p
		case p.Frontier == "hotcold" && !p.WearAware:
			separated[k] = p
		case p.Frontier == "hotcold" && p.WearAware:
			separatedWear[k] = p
		default:
			t.Fatalf("unexpected configuration %q/wearAware=%v", p.Frontier, p.WearAware)
		}
		if p.Writes <= 0 {
			t.Errorf("%s/%s/%s: no writes measured", p.Workload, p.Policy, p.Frontier)
		}
		if p.WA < 1 {
			t.Errorf("%s/%s/%s: WA %.3f below 1", p.Workload, p.Policy, p.Frontier, p.WA)
		}
		if p.Erases <= 0 {
			t.Errorf("%s/%s/%s: steady-state window saw no erases", p.Workload, p.Policy, p.Frontier)
		}
		if p.EraseSpread != p.MaxErase-p.MinErase || p.EraseSpread < 0 {
			t.Errorf("%s/%s/%s: inconsistent erase spread %d (min %d, max %d)",
				p.Workload, p.Policy, p.Frontier, p.EraseSpread, p.MinErase, p.MaxErase)
		}
	}

	for k, base := range single {
		sep, ok := separated[k]
		if !ok {
			t.Fatalf("%v: missing separated point", k)
		}
		skewed := k.wl != "uniform"
		if skewed && !(sep.WA < base.WA) {
			t.Errorf("%s/%s: hot/cold separation did not lower WA (single %.3f, hotcold %.3f)",
				k.wl, k.policy, base.WA, sep.WA)
		}
		if base.HotWrites != 0 {
			t.Errorf("%s/%s: single-frontier point reports %d hot writes", k.wl, k.policy, base.HotWrites)
		}
		if skewed && (sep.HotWrites <= 0 || sep.HotWrites >= sep.Writes) {
			t.Errorf("%s/%s: classifier routed %d of %d writes hot; expected a proper split",
				k.wl, k.policy, sep.HotWrites, sep.Writes)
		}
		if !skewed && sep.WA > base.WA*1.10 {
			t.Errorf("%s/%s: separation cost more than 10%% WA on an unskewed workload (single %.3f, hotcold %.3f)",
				k.wl, k.policy, base.WA, sep.WA)
		}
		// The analytic model must predict the measured direction.
		if skewed && !(base.ModelSeparatedWA < base.ModelSingleWA) {
			t.Errorf("%s: model does not predict a separation win (single %.3f, separated %.3f)",
				k.wl, base.ModelSingleWA, base.ModelSeparatedWA)
		}
	}

	for k, sep := range separated {
		aware, ok := separatedWear[k]
		if !ok {
			t.Fatalf("%v: missing wear-aware point", k)
		}
		if aware.EraseSpread > sep.EraseSpread {
			t.Errorf("%s/%s: wear-aware allocation widened the erase spread (%d > %d)",
				k.wl, k.policy, aware.EraseSpread, sep.EraseSpread)
		}
		// Wear-aware allocation reorders the free pool; it must not change
		// how much work is done, only where it lands. Allow a small
		// tolerance for the different victim geometries it induces.
		if aware.WA > sep.WA*1.10 {
			t.Errorf("%s/%s: wear-aware allocation cost more than 10%% WA (%.3f vs %.3f)",
				k.wl, k.policy, aware.WA, sep.WA)
		}
	}
}
