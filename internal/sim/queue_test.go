package sim

import (
	"reflect"
	"testing"
)

// TestQueueSweepTrends pins the queue sweep's three headline claims at quick
// scale: (1) a caller keeping depth >= 8 operations in flight through the
// async queue beats the synchronous ceiling at equal caller concurrency;
// (2) delivered throughput tracks the offered rate below the model's
// saturation knee and lands within ~20% of the knee under 2x overload; and
// (3) at 2x overload the shedding admission policy keeps the completed
// operations' p99.9 within the admission budget's neighborhood — counting
// the drops — where the unbounded queue's tail grows with the backlog.
func TestQueueSweepTrends(t *testing.T) {
	points, err := QueueSweep(QueueSweepOptions{Scale: QuickScale()})
	if err != nil {
		t.Fatalf("QueueSweep: %v", err)
	}

	var sync *QueuePoint
	closed := map[int]*QueuePoint{}
	var shedRows []*QueuePoint
	var waitRow, unboundedRow, burstyRow *QueuePoint
	for i := range points {
		p := &points[i]
		switch {
		case p.Mode == "closed" && p.Policy == "sync":
			sync = p
		case p.Mode == "closed":
			closed[p.Depth] = p
		case p.Mode == "open" && p.Policy == "shed" && p.Workload == "uniform+poisson":
			shedRows = append(shedRows, p)
		case p.Mode == "open" && p.Policy == "wait":
			waitRow = p
		case p.Mode == "open" && p.Policy == "unbounded":
			unboundedRow = p
		case p.Mode == "open" && p.Policy == "shed":
			burstyRow = p
		}
	}
	if sync == nil || waitRow == nil || unboundedRow == nil || burstyRow == nil || len(shedRows) < 2 {
		t.Fatalf("sweep rows missing: %+v", points)
	}

	// (1) Depth scaling: the async queue at depth >= 8 must beat the
	// synchronous chain, and throughput must not regress as depth grows.
	d8, ok := closed[8]
	if !ok {
		t.Fatal("no closed-loop depth-8 row")
	}
	if d8.Throughput < 1.5*sync.Throughput {
		t.Errorf("async depth 8 throughput %.0f not >= 1.5x sync %.0f", d8.Throughput, sync.Throughput)
	}
	if d1, ok := closed[1]; ok {
		if ratio := d1.Throughput / sync.Throughput; ratio < 0.95 || ratio > 1.05 {
			t.Errorf("depth 1 throughput %.0f should match sync %.0f (one op in flight is the synchronous chain)", d1.Throughput, sync.Throughput)
		}
	}
	prev := 0.0
	for _, d := range []int{1, 4, 8, 16} {
		p, ok := closed[d]
		if !ok {
			continue
		}
		if p.Throughput < 0.98*prev {
			t.Errorf("throughput regressed with depth: %.0f at depth %d after %.0f", p.Throughput, d, prev)
		}
		prev = p.Throughput
	}

	// (2) The knee. Below it, delivered tracks offered; at 2x overload,
	// delivered lands within ~20% of the model's prediction at the row's
	// measured write-amplification.
	overload := shedRows[0]
	for _, p := range shedRows {
		if p.Offered > overload.Offered {
			overload = p
		}
		if p.Offered < 0.8*p.ModelKnee {
			if rel := relErr(p.Throughput, p.Offered); rel > 0.2 {
				t.Errorf("below knee (offered %.0f): delivered %.0f off by %.0f%%", p.Offered, p.Throughput, 100*rel)
			}
		}
	}
	if overload.Offered < 1.5*overload.ModelKnee {
		t.Fatalf("no overload row: max offered %.0f vs knee %.0f", overload.Offered, overload.ModelKnee)
	}
	if rel := relErr(overload.Throughput, overload.ModelKnee); rel > 0.2 {
		t.Errorf("at 2x overload delivered %.0f is %.0f%% from model knee %.0f (want ~20%%)", overload.Throughput, 100*rel, overload.ModelKnee)
	}

	// (3) Admission control under overload: drops are counted, every offered
	// operation is accounted for, and the completed tail stays within the
	// admission budget's neighborhood instead of growing with the backlog.
	if overload.Shed == 0 {
		t.Error("2x overload with shedding admission shed nothing")
	}
	if got := overload.Completed + overload.Shed; got != overload.Ops {
		t.Errorf("overload row accounting: completed %d + shed %d != offered %d", overload.Completed, overload.Shed, overload.Ops)
	}
	if overload.Latency.P999 > 2*overload.DelayBound {
		t.Errorf("overload p99.9 %v exceeds twice the admission budget %v", overload.Latency.P999, overload.DelayBound)
	}
	if waitRow.Delayed == 0 {
		t.Error("2x overload with waiting admission delayed nothing")
	}
	if waitRow.Shed != 0 {
		t.Errorf("waiting admission shed %d operations", waitRow.Shed)
	}
	if waitRow.Latency.P999 > 2*waitRow.DelayBound {
		t.Errorf("wait-policy p99.9 %v exceeds twice the admission budget %v", waitRow.Latency.P999, waitRow.DelayBound)
	}
	if unboundedRow.Shed != 0 || unboundedRow.Delayed != 0 {
		t.Errorf("unbounded row engaged admission control: shed %d, delayed %d", unboundedRow.Shed, unboundedRow.Delayed)
	}
	if unboundedRow.Latency.P999 < 5*overload.Latency.P999 {
		t.Errorf("unbounded overload p99.9 %v should collapse well past the shedding policy's %v", unboundedRow.Latency.P999, overload.Latency.P999)
	}

	// The bursty stream at a nominal rate of the knee must still shed (its
	// burst phases offer several times the knee) while keeping the tail
	// bounded like the Poisson rows.
	if burstyRow.Shed == 0 {
		t.Error("bursty stream at the knee shed nothing despite burst phases over it")
	}
	if burstyRow.Latency.P999 > 2*burstyRow.DelayBound {
		t.Errorf("bursty p99.9 %v exceeds twice the admission budget %v", burstyRow.Latency.P999, burstyRow.DelayBound)
	}
}

// relErr returns |got-want|/want.
func relErr(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	rel := (got - want) / want
	if rel < 0 {
		rel = -rel
	}
	return rel
}

// TestQueueSweepDeterministic pins that the sweep's results are a pure
// function of its options: admission decisions and latency accounting happen
// on each shard's virtual timeline in submission order, so host goroutine
// scheduling must not leak into any row.
func TestQueueSweepDeterministic(t *testing.T) {
	opts := QueueSweepOptions{
		Scale:         QuickScale(),
		Depths:        []int{8},
		RateMultiples: []float64{2},
		BurstRatio:    -1, // skip the bursty row to keep the re-run cheap
	}
	opts.Scale.MeasureWrites = 1500
	first, err := QueueSweep(opts)
	if err != nil {
		t.Fatalf("QueueSweep: %v", err)
	}
	second, err := QueueSweep(opts)
	if err != nil {
		t.Fatalf("QueueSweep (rerun): %v", err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("two runs with identical options diverged:\n%+v\n%+v", first, second)
	}
}
