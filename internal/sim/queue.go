package sim

import (
	"context"
	"errors"
	"fmt"
	"time"

	"geckoftl/internal/flash"
	"geckoftl/internal/ftl"
	"geckoftl/internal/model"
	"geckoftl/internal/queue"
	"geckoftl/internal/stats"
	"geckoftl/internal/workload"
)

// QueuePoint is one row of the queue sweep.
type QueuePoint struct {
	// Mode is "closed" (a caller that keeps Depth operations in flight and
	// issues the next when the oldest completes) or "open" (operations
	// arrive on an arrival process's schedule, regardless of completions).
	Mode string
	// Workload names the page stream, with the arrival process appended for
	// open rows (e.g. "uniform+poisson").
	Workload string
	// Policy is the admission policy: "sync" for the synchronous baseline,
	// "wait"/"shed" for queued rows, "unbounded" for the no-admission
	// contrast row.
	Policy string
	// Depth is the per-shard queue depth (0 for the synchronous baseline and
	// the unbounded row).
	Depth int
	// Channels and Dies describe the topology.
	Channels, Dies int
	// Ops is the number of operations offered in the measured window;
	// Completed, Shed and Delayed partition their fates (Delayed ops also
	// complete).
	Ops, Completed, Shed, Delayed int64
	// Offered is the measured offered rate in ops/sec (0 for closed rows,
	// where the caller offers exactly what completes).
	Offered float64
	// Throughput is the delivered rate: completed ops per second of virtual
	// time from the window's start to the last completion.
	Throughput float64
	// WA is the measured write-amplification of the window.
	WA float64
	// ModelKnee is the queueing model's predicted saturation knee for this
	// topology at the row's measured WA; ModelDelivered is the fluid-limit
	// delivered rate min(Offered, ModelKnee).
	ModelKnee, ModelDelivered float64
	// DelayBound is the admission budget: the model's bound on the virtual
	// backlog an admitted operation can wait behind.
	DelayBound time.Duration
	// Latency is the arrival-to-completion distribution of completed
	// operations (for the synchronous baseline, the engine's per-write
	// service times).
	Latency stats.Summary
}

// QueueSweepOptions parameterizes QueueSweep.
type QueueSweepOptions struct {
	// Scale sizes the device, cache budget and measured window; the device
	// and cache grow until every shard stays workable, as in ChannelSweep.
	Scale ExperimentScale
	// Channels is the engine width of every row. Zero means 4.
	Channels int
	// Depth is the per-shard queue depth of the open-loop rows. Zero means 8.
	Depth int
	// Depths lists the closed-loop depths swept. Empty means 1, 4, 8, 16.
	Depths []int
	// Workload names the page stream. Empty means uniform.
	Workload string
	// RateMultiples lists the open-loop offered rates as multiples of the
	// calibrated saturation knee. Empty means 0.25, 0.5, 1.0, 2.0.
	RateMultiples []float64
	// Policy is the admission policy of the rate-multiple rows, "shed" or
	// "wait". Empty means shed. The 2x wait and unbounded contrast rows run
	// regardless.
	Policy string
	// BurstRatio is the burst-to-lull rate ratio of the bursty row. Zero
	// means 4; values <= 1 skip the row.
	BurstRatio float64
}

// QueueSweep measures the async submission/completion engine against the
// synchronous baseline and the queueing model, in two parts.
//
// Closed-loop rows pin the depth-scaling story: one synchronous caller —
// every operation's arrival chained to the previous completion — is bounded
// by a single die's service rate no matter how many channels the device has,
// while a caller keeping Depth operations in flight approaches the
// Channels × DiesPerChannel ceiling once the depth covers the die count.
//
// Open-loop rows pin the saturation knee and admission control: operations
// arrive on a Poisson schedule at multiples of the model's predicted knee.
// Below the knee delivered throughput tracks the offered rate; above it the
// device delivers the knee. At 2x overload the shedding policy keeps the
// completed operations' p99.9 within the admission budget's neighborhood and
// counts the drops, where the unbounded row lets queueing delay grow with
// the backlog — the latency collapse admission control exists to prevent.
//
// All rows are deterministic for a given scale: admission decisions are made
// by each shard's worker in submission order against the shard's own virtual
// clock, so host goroutine scheduling never changes a result.
func QueueSweep(opts QueueSweepOptions) ([]QueuePoint, error) {
	if opts.Scale.MeasureWrites <= 0 {
		return nil, fmt.Errorf("sim: measure writes %d must be positive", opts.Scale.MeasureWrites)
	}
	channels := opts.Channels
	if channels <= 0 {
		channels = 4
	}
	depth := opts.Depth
	if depth <= 0 {
		depth = 8
	}
	depths := opts.Depths
	if len(depths) == 0 {
		depths = []int{1, 4, 8, 16}
	}
	wl := opts.Workload
	if wl == "" {
		wl = "uniform"
	}
	multiples := opts.RateMultiples
	if len(multiples) == 0 {
		multiples = []float64{0.25, 0.5, 1.0, 2.0}
	}
	burst := opts.BurstRatio
	if burst == 0 {
		burst = 4
	}
	ratePolicy := queue.AdmitShed
	if opts.Policy != "" {
		var err error
		if ratePolicy, err = queue.ParsePolicy(opts.Policy); err != nil {
			return nil, fmt.Errorf("sim: queue sweep: %w", err)
		}
	}
	// Grow the device and cache once so every shard stays workable; the
	// grown geometry applies to every row (see ChannelSweep).
	if min := MinSweepShardBlocks * channels; opts.Scale.Device.Blocks < min {
		opts.Scale.Device.Blocks = min
	}
	if min := minSweepShardCache * channels; opts.Scale.CacheEntries < min {
		opts.Scale.CacheEntries = min
	}

	var points []QueuePoint

	// Synchronous baseline: calibrates the model knee's WA besides anchoring
	// the depth-scaling comparison.
	sync, err := queueSyncPoint(opts, channels, wl)
	if err != nil {
		return nil, fmt.Errorf("sim: queue sweep (sync): %w", err)
	}
	points = append(points, sync)

	for _, d := range depths {
		p, err := queueClosedPoint(opts, channels, wl, d)
		if err != nil {
			return nil, fmt.Errorf("sim: queue sweep (closed, depth %d): %w", d, err)
		}
		points = append(points, p)
	}

	// The calibrated knee sets the open-loop offered rates; each row then
	// reports the model knee at its own measured WA.
	knee := sync.ModelKnee
	if knee <= 0 {
		return nil, fmt.Errorf("sim: calibrated saturation knee %g must be positive", knee)
	}
	type openRow struct {
		rate   float64
		policy queue.Policy
		depth  int
		label  string
		burst  float64
	}
	var rows []openRow
	for _, m := range multiples {
		rows = append(rows, openRow{rate: m * knee, policy: ratePolicy, depth: depth, label: ratePolicy.String()})
	}
	over := 2 * knee
	rows = append(rows, openRow{rate: over, policy: queue.AdmitWait, depth: depth, label: "wait"})
	// The unbounded contrast row: a queue deep enough that admission control
	// never engages, so the overload's backlog lands in the latency tail.
	rows = append(rows, openRow{rate: over, policy: queue.AdmitWait, depth: 4 * int(opts.Scale.MeasureWrites), label: "unbounded"})
	if burst > 1 {
		rows = append(rows, openRow{rate: knee, policy: ratePolicy, depth: depth, label: ratePolicy.String(), burst: burst})
	}
	for _, r := range rows {
		p, err := queueOpenPoint(opts, channels, wl, r.rate, r.policy, r.depth, r.label, r.burst)
		if err != nil {
			return nil, fmt.Errorf("sim: queue sweep (open, %s, %.0f ops/s): %w", r.label, r.rate, err)
		}
		points = append(points, p)
	}
	return points, nil
}

// queueBench is the warmed engine + device every row starts from.
type queueBench struct {
	dev  *flash.Device
	eng  *ftl.Engine
	gen  workload.Generator
	cfg  flash.Config
	t0   time.Duration
	base flash.Counters
	ops  ftl.Stats
}

// newQueueBench builds a fresh device and engine, warms them with two full
// overwrites through the batched path, and anchors the measurement window:
// stats reset, counters snapshotted, and the device-wide arrival clock
// ratcheted so every shard's clock starts at the same virtual instant t0.
func newQueueBench(opts QueueSweepOptions, channels int, wl string) (*queueBench, error) {
	scale := opts.Scale
	spec := scale.Device
	spec.Channels = channels
	dev, err := spec.NewDevice()
	if err != nil {
		return nil, err
	}
	cfg := dev.Config()
	// Incremental GC scheduling: the queue sweep is about tail latency, and
	// an inline collector's whole-victim stalls (tens of milliseconds) would
	// dominate every distribution and blur the saturation knee the model
	// predicts from mean service rates.
	ftlOpts := ftl.GeckoFTLOptions(scale.CacheEntries / channels)
	ftlOpts.GCMode = ftl.GCIncremental
	eng, err := ftl.NewEngine(dev, ftlOpts, 0)
	if err != nil {
		return nil, err
	}
	gen, err := workload.ByName(wl, eng.LogicalPages(), scale.Seed)
	if err != nil {
		return nil, err
	}
	batchSize := 2 * cfg.Dies()
	var done int64
	for warm := 2 * eng.LogicalPages(); done < warm; {
		_, targets, _ := workload.SplitBatch(workload.TakeBatch(gen, batchSize))
		if len(targets) == 0 {
			continue
		}
		if err := eng.WriteBatch(context.Background(), targets); err != nil {
			return nil, fmt.Errorf("warm-up: %w", err)
		}
		done += int64(len(targets))
	}
	eng.ResetLatencyStats()
	return &queueBench{
		dev:  dev,
		eng:  eng,
		gen:  gen,
		cfg:  cfg,
		t0:   dev.SyncArrival(),
		base: dev.Counters(),
		ops:  eng.Stats(),
	}, nil
}

// point assembles the common fields of a finished row. end is the last
// completion instant on the virtual timeline; offered is 0 for closed rows.
func (b *queueBench) point(mode, wlName, policy string, depth int, end time.Duration, completed int64, offered float64) QueuePoint {
	window := end - b.t0
	after := b.eng.Stats()
	writes := after.LogicalWrites - b.ops.LogicalWrites
	wa := b.dev.Counters().Sub(b.base).WriteAmplification(writes, b.cfg.Latency.WriteReadRatio())
	qp := model.QueueingParams{
		Parallel: model.ParallelParams{
			Channels:       b.cfg.NumChannels(),
			DiesPerChannel: b.cfg.Dies() / b.cfg.NumChannels(),
		},
		Depth: depth,
	}
	p := QueuePoint{
		Mode:       mode,
		Workload:   wlName,
		Policy:     policy,
		Depth:      depth,
		Channels:   b.cfg.NumChannels(),
		Dies:       b.cfg.Dies(),
		Completed:  completed,
		Offered:    offered,
		WA:         wa,
		ModelKnee:  qp.SaturationKnee(b.cfg.Latency, wa),
		DelayBound: qp.DelayBound(b.cfg.Latency, wa),
	}
	if window > 0 {
		p.Throughput = float64(completed) / window.Seconds()
	}
	p.ModelDelivered = p.ModelKnee
	if offered > 0 && offered < p.ModelKnee {
		p.ModelDelivered = offered
	}
	return p
}

// queueSyncPoint measures the synchronous ceiling at caller concurrency one:
// each operation's arrival is the previous operation's completion, the
// host-side dependency chain of a caller that waits. The chain crosses
// shards, so the device can never overlap two of the caller's operations no
// matter how many dies it has.
func queueSyncPoint(opts QueueSweepOptions, channels int, wl string) (QueuePoint, error) {
	b, err := newQueueBench(opts, channels, wl)
	if err != nil {
		return QueuePoint{}, err
	}
	pc := b.t0
	n := opts.Scale.MeasureWrites
	for i := int64(0); i < n; i++ {
		op := b.gen.Next()
		s, err := b.eng.ShardOf(op.Page)
		if err != nil {
			return QueuePoint{}, err
		}
		b.eng.ShardAdvanceArrival(s, pc)
		if err := execOp(b.eng, op); err != nil {
			return QueuePoint{}, err
		}
		pc = b.eng.ShardClock(s)
	}
	p := b.point("closed", wl, "sync", 0, pc, n, 0)
	p.Ops = n
	p.Latency = b.eng.LatencyStats().Writes
	return p, nil
}

// execOp issues one closed-loop operation synchronously.
func execOp(eng *ftl.Engine, op workload.Op) error {
	switch op.Kind {
	case workload.OpRead:
		return eng.Read(op.Page)
	case workload.OpTrim:
		return eng.Trim(op.Page)
	default:
		return eng.Write(op.Page)
	}
}

// newQueue opens a submission queue over the bench's engine.
func (b *queueBench) newQueue(depth int, policy queue.Policy) (*queue.Engine, error) {
	return queue.New(queue.Config{
		Shards:  b.eng.Shards(),
		Depth:   depth,
		Policy:  policy,
		Quantum: b.cfg.Latency.PageWrite,
		ShardOf: b.eng.ShardOf,
		Exec: func(_ int, req queue.Request) error {
			switch req.Kind {
			case queue.OpRead:
				return b.eng.Read(req.LPN)
			case queue.OpTrim:
				return b.eng.Trim(req.LPN)
			default:
				return b.eng.Write(req.LPN)
			}
		},
		Clock:   b.eng.ShardClock,
		Advance: b.eng.ShardAdvanceArrival,
	})
}

// queueClosedPoint measures a caller keeping depth operations in flight
// through the submission queue: operation i's arrival is the completion
// instant of operation i-depth (the oldest in-flight one the caller waited
// on). Depth 1 degenerates to the synchronous chain; once the window covers
// the die count the shards' timelines overlap and throughput approaches the
// topology's ceiling.
func queueClosedPoint(opts QueueSweepOptions, channels int, wl string, depth int) (QueuePoint, error) {
	b, err := newQueueBench(opts, channels, wl)
	if err != nil {
		return QueuePoint{}, err
	}
	q, err := b.newQueue(depth, queue.AdmitWait)
	if err != nil {
		return QueuePoint{}, err
	}
	defer q.Close()
	ctx := context.Background()
	n := opts.Scale.MeasureWrites
	window := make([]*queue.Ticket, 0, depth)
	pc := b.t0
	end := b.t0
	advance := func(tk *queue.Ticket) error {
		if err := tk.Wait(ctx); err != nil {
			return err
		}
		if at := tk.CompletedAt(); at > end {
			end = at
			if at > pc {
				pc = at
			}
		}
		return nil
	}
	for i := int64(0); i < n; i++ {
		if int64(len(window)) == int64(depth) {
			if err := advance(window[0]); err != nil {
				return QueuePoint{}, err
			}
			window = window[1:]
		}
		op := b.gen.Next()
		tk, err := q.Submit(ctx, queue.Request{Kind: queueKind(op.Kind), LPN: op.Page, Arrival: pc, Timed: true})
		if err != nil {
			return QueuePoint{}, err
		}
		window = append(window, tk)
	}
	for _, tk := range window {
		if err := advance(tk); err != nil {
			return QueuePoint{}, err
		}
	}
	qs := q.Stats()
	p := b.point("closed", wl, qs.Policy, depth, end, qs.Completed, 0)
	p.Ops = qs.Submitted
	p.Shed, p.Delayed = qs.Shed, qs.Delayed
	p.Latency = qs.Latency
	return p, nil
}

// queueKind maps a workload op kind to the queue's.
func queueKind(k workload.OpKind) queue.OpKind {
	switch k {
	case workload.OpRead:
		return queue.OpRead
	case workload.OpTrim:
		return queue.OpTrim
	default:
		return queue.OpWrite
	}
}

// queueOpenPoint measures an open-loop arrival stream at the given offered
// rate: operations arrive on the process's schedule whether or not earlier
// ones completed, which is what exposes saturation. burst > 1 swaps the
// Poisson process for the bursty one at the same nominal rate.
func queueOpenPoint(opts QueueSweepOptions, channels int, wl string, rate float64, policy queue.Policy, depth int, label string, burst float64) (QueuePoint, error) {
	b, err := newQueueBench(opts, channels, wl)
	if err != nil {
		return QueuePoint{}, err
	}
	var proc workload.ArrivalProcess
	if burst > 1 {
		meanGap := time.Duration(float64(time.Second) / rate)
		proc, err = workload.NewBursty(rate, burst, 50*meanGap, opts.Scale.Seed+1)
	} else {
		proc, err = workload.NewPoisson(rate, opts.Scale.Seed+1)
	}
	if err != nil {
		return QueuePoint{}, err
	}
	ol, err := workload.NewOpenLoop(b.gen, proc)
	if err != nil {
		return QueuePoint{}, err
	}
	q, err := b.newQueue(depth, policy)
	if err != nil {
		return QueuePoint{}, err
	}
	defer q.Close()
	ctx := context.Background()
	n := opts.Scale.MeasureWrites
	tickets := make([]*queue.Ticket, 0, n)
	last := b.t0
	for i := int64(0); i < n; i++ {
		a := ol.Next()
		at := b.t0 + a.At
		tk, err := q.Submit(ctx, queue.Request{Kind: queueKind(a.Op.Kind), LPN: a.Op.Page, Arrival: at, Timed: true})
		if err != nil {
			return QueuePoint{}, err
		}
		tickets = append(tickets, tk)
		last = at
	}
	if err := q.Drain(ctx); err != nil {
		return QueuePoint{}, err
	}
	for _, tk := range tickets {
		if err := tk.Err(); err != nil && !errors.Is(err, queue.ErrFull) {
			return QueuePoint{}, err
		}
	}
	end := b.t0
	for s := 0; s < b.eng.Shards(); s++ {
		if c := b.eng.ShardClock(s); c > end {
			end = c
		}
	}
	var offered float64
	if last > b.t0 {
		offered = float64(n) / (last - b.t0).Seconds()
	}
	qs := q.Stats()
	p := b.point("open", ol.Name(), label, depth, end, qs.Completed, offered)
	p.Ops = qs.Submitted
	p.Shed, p.Delayed = qs.Shed, qs.Delayed
	p.Latency = qs.Latency
	return p, nil
}
