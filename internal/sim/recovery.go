package sim

import (
	"context"
	"fmt"
	"time"

	"geckoftl/internal/flash"
	"geckoftl/internal/ftl"
	"geckoftl/internal/model"
	"geckoftl/internal/workload"
)

// RecoveryPoint is one measurement of the engine-wide recovery sweep: a
// sharded engine is crashed after a steady-state fill and the cost of
// rebuilding every shard is recorded, next to the analytic model's
// prediction for the same configuration.
type RecoveryPoint struct {
	// Dimension names the axis this point varies: "channels" (recovery
	// parallelism), "checkpoint" (the cache capacity C, which sets the
	// checkpoint interval and the 2C backwards-scan bound), or "capacity"
	// (device blocks, comparing FTLs whose recovery grows with capacity
	// against GeckoFTL's bounded scan).
	Dimension string
	// FTL is the engine's shard configuration.
	FTL string
	// Channels, Dies and Shards describe the topology.
	Channels, Dies, Shards int
	// Blocks is the device size of this point.
	Blocks int
	// CacheEntries is the engine-wide mapping-cache budget (divided across
	// shards).
	CacheEntries int
	// PreWrites is the number of logical writes issued before the crash.
	PreWrites int64
	// WallClock and SerialTime are the engine recovery's slowest-shard
	// critical path and summed per-shard cost (see ftl.EngineRecoveryReport).
	WallClock, SerialTime time.Duration
	// Speedup is SerialTime/WallClock.
	Speedup float64
	// SpareReads, PageReads and PageWrites total the recovery IO.
	SpareReads, PageReads, PageWrites int64
	// RecoveredEntries is the number of mapping entries recreated by the
	// shards' bounded backwards scans.
	RecoveredEntries int
	// ModelWall and ModelSerial are the analytic model.EngineRecovery
	// prediction for the same geometry, shard count and cache budget. The
	// simulation and the model use different device fills, so compare
	// trends, not absolute values.
	ModelWall, ModelSerial time.Duration
}

// RecoverySweepOptions parameterizes RecoverySweep.
type RecoverySweepOptions struct {
	// Scale sizes the device, cache budget and workload seed. As in
	// ChannelSweep, the device and cache grow until the widest point keeps
	// workable shards, and the grown values apply to every point.
	Scale ExperimentScale
	// Channels lists the channel counts of the parallelism dimension.
	// Empty means 1,2,4,8.
	Channels []int
	// CacheEntries lists engine-wide cache budgets for the checkpoint
	// dimension, measured at the widest channel count. Empty means half and
	// double the scale's budget (the scale's own budget is already covered
	// by the channels dimension).
	CacheEntries []int
	// CapacityFactors lists device-size multipliers for the capacity
	// dimension, measured on one channel for GeckoFTL and LazyFTL. Empty
	// means 1,2,4.
	CapacityFactors []int
}

// RecoverySweep measures engine-wide crash recovery across three axes:
// recovery parallelism (channel count), checkpoint interval (cache capacity)
// and device capacity (GeckoFTL versus LazyFTL). Every point fills a sharded
// engine to steady state, power-fails it, recovers it, verifies consistency,
// and reports the recovery cost next to the analytic model's prediction.
//
// The qualitative trends mirror model.Recovery: wall-clock shrinks with the
// channel count (the per-shard scan shrinks and shards recover in parallel),
// the backwards scan is bounded by the checkpointed 2C spare reads, and
// LazyFTL's recovery grows with capacity while GeckoFTL's cache recovery
// stays bounded.
func RecoverySweep(opts RecoverySweepOptions) ([]RecoveryPoint, error) {
	scale := opts.Scale
	channels := opts.Channels
	if len(channels) == 0 {
		channels = []int{1, 2, 4, 8}
	}
	maxChannels := 0
	for _, c := range channels {
		if c > maxChannels {
			maxChannels = c
		}
	}
	// Grow the device and cache once so the widest point keeps workable
	// shards; every point uses the grown values (see ChannelSweep).
	if min := MinSweepShardBlocks * maxChannels; scale.Device.Blocks < min {
		scale.Device.Blocks = min
	}
	if min := minSweepShardCache * maxChannels; scale.CacheEntries < min {
		scale.CacheEntries = min
	}
	caches := opts.CacheEntries
	if len(caches) == 0 {
		caches = []int{scale.CacheEntries / 2, scale.CacheEntries * 2}
	}
	factors := opts.CapacityFactors
	if len(factors) == 0 {
		factors = []int{1, 2, 4}
	}

	var points []RecoveryPoint
	for _, c := range channels {
		p, err := recoveryPoint("channels", scale, "GeckoFTL", c, scale.Device.Blocks, scale.CacheEntries)
		if err != nil {
			return nil, fmt.Errorf("sim: recovery sweep, %d channels: %w", c, err)
		}
		points = append(points, p)
	}
	for _, cache := range caches {
		if cache < minSweepShardCache*maxChannels {
			cache = minSweepShardCache * maxChannels
		}
		p, err := recoveryPoint("checkpoint", scale, "GeckoFTL", maxChannels, scale.Device.Blocks, cache)
		if err != nil {
			return nil, fmt.Errorf("sim: recovery sweep, cache %d: %w", cache, err)
		}
		points = append(points, p)
	}
	for _, factor := range factors {
		if factor < 1 {
			factor = 1
		}
		for _, name := range []string{"GeckoFTL", "LazyFTL"} {
			p, err := recoveryPoint("capacity", scale, name, 1, scale.Device.Blocks*factor, scale.CacheEntries)
			if err != nil {
				return nil, fmt.Errorf("sim: recovery sweep, %s x%d capacity: %w", name, factor, err)
			}
			points = append(points, p)
		}
	}
	return points, nil
}

// shardOptions builds the named FTL configuration for a per-shard cache.
func shardOptions(name string, cacheEntries int) (ftl.Options, model.FTLKind, error) {
	switch name {
	case "GeckoFTL":
		return ftl.GeckoFTLOptions(cacheEntries), model.GeckoFTL, nil
	case "LazyFTL":
		return ftl.LazyFTLOptions(cacheEntries), model.LazyFTL, nil
	case "DFTL":
		return ftl.DFTLOptions(cacheEntries), model.DFTL, nil
	case "uFTL":
		return ftl.MuFTLOptions(cacheEntries), model.MuFTL, nil
	case "IB-FTL":
		return ftl.IBFTLOptions(cacheEntries), model.IBFTL, nil
	default:
		return ftl.Options{}, 0, fmt.Errorf("sim: unknown FTL %q", name)
	}
}

// recoveryPoint fills one sharded engine to steady state, crashes it,
// recovers it and audits the result.
func recoveryPoint(dimension string, scale ExperimentScale, ftlName string, channels, blocks, cacheTotal int) (RecoveryPoint, error) {
	spec := scale.Device
	spec.Blocks = blocks
	spec.Channels = channels
	dev, err := spec.NewDevice()
	if err != nil {
		return RecoveryPoint{}, err
	}
	cfg := dev.Config()
	opts, kind, err := shardOptions(ftlName, cacheTotal/channels)
	if err != nil {
		return RecoveryPoint{}, err
	}
	// Logarithmic Gecko's merge runs grow with the shard's capacity, and a
	// single merge must fit inside the garbage-collection reserve; scale the
	// reserve with the shard size so the capacity dimension's large
	// single-shard points cannot exhaust the free pool mid-merge.
	if shardBlocks := blocks / channels; 4+shardBlocks/128 > opts.GCFreeBlockReserve {
		opts.GCFreeBlockReserve = 4 + shardBlocks/128
	}
	eng, err := ftl.NewEngine(dev, opts, 0)
	if err != nil {
		return RecoveryPoint{}, err
	}
	gen, err := workload.NewUniform(eng.LogicalPages(), scale.Seed)
	if err != nil {
		return RecoveryPoint{}, err
	}

	// Fill the device past capacity so the crash interrupts steady-state
	// garbage collection with a realistic population of dirty entries.
	pre := 2 * eng.LogicalPages()
	batch := make([]flash.LPN, 8*cfg.Dies())
	for done := int64(0); done < pre; done += int64(len(batch)) {
		for i := range batch {
			batch[i] = gen.Next().Page
		}
		if err := eng.WriteBatch(context.Background(), batch); err != nil {
			return RecoveryPoint{}, fmt.Errorf("fill: %w", err)
		}
	}

	if err := eng.PowerFail(); err != nil {
		return RecoveryPoint{}, err
	}
	report, err := eng.Recover()
	if err != nil {
		return RecoveryPoint{}, err
	}
	if err := eng.CheckConsistency(); err != nil {
		return RecoveryPoint{}, fmt.Errorf("post-recovery audit: %w", err)
	}

	mp := model.Default()
	mp.Blocks = int64(cfg.Blocks)
	mp.PagesPerBlock = int64(cfg.PagesPerBlock)
	mp.PageSize = int64(cfg.PageSize)
	mp.OverProvision = cfg.OverProvision
	mp.CacheEntries = int64(cacheTotal)
	mp.Latency = cfg.Latency
	est := model.EngineRecovery(kind, mp, eng.Shards())

	return RecoveryPoint{
		Dimension:        dimension,
		FTL:              eng.Name(),
		Channels:         channels,
		Dies:             cfg.Dies(),
		Shards:           eng.Shards(),
		Blocks:           cfg.Blocks,
		CacheEntries:     cacheTotal,
		PreWrites:        pre,
		WallClock:        report.WallClock,
		SerialTime:       report.SerialTime,
		Speedup:          report.Speedup(),
		SpareReads:       report.SpareReads,
		PageReads:        report.PageReads,
		PageWrites:       report.PageWrites,
		RecoveredEntries: report.RecoveredMappingEntries,
		ModelWall:        est.WallClock,
		ModelSerial:      est.SerialTime,
	}, nil
}
