package sim

import (
	"context"
	"fmt"
	"time"

	"geckoftl/internal/ftl"
	"geckoftl/internal/model"
	"geckoftl/internal/workload"
)

// ChannelPoint is one row of a channel-scaling sweep: the same workload run
// through the sharded engine on an increasing number of channels.
type ChannelPoint struct {
	// Channels and Dies describe the topology of this point.
	Channels, Dies int
	// Writes is the number of logical writes in the measured window.
	Writes int64
	// WallTime is the slowest shard's busy time during the window: each
	// shard issues its IO synchronously, so its critical path is the sum
	// of its dies' busy time, and the engine finishes with its slowest
	// shard.
	WallTime time.Duration
	// SerialTime is the total die-busy time: what the same IO would cost on
	// a single serialized plane.
	SerialTime time.Duration
	// Throughput is logical writes per second of wall-clock.
	Throughput float64
	// Speedup is this point's throughput relative to the sweep's 1-channel
	// (or first) point.
	Speedup float64
	// WA is the measured write-amplification of the window.
	WA float64
	// ModelThroughput is the parallelism-aware model's prediction given the
	// measured WA and an ideal, perfectly balanced controller that also
	// overlaps dies within a channel (which the synchronous shards do not);
	// with DiesPerChannel > 1 it is an upper bound a future asynchronous
	// shard dispatcher could approach.
	ModelThroughput float64
	// LoadImbalance is max/mean die busy time over the window (1.0 is a
	// perfectly balanced sweep).
	LoadImbalance float64
}

// MinSweepShardBlocks is the fewest blocks ChannelSweep allows per shard.
// Below roughly this size a GeckoFTL shard's fixed overheads (active blocks,
// GC reserve, Gecko runs) eat the over-provisioned space and garbage
// collection cannot converge.
const MinSweepShardBlocks = 32

// minSweepShardCache is the fewest mapping-cache entries ChannelSweep allows
// per shard. ChannelSweep grows the sweep-wide budget (uniformly, so points
// stay comparable) rather than silently giving wide points extra cache.
const minSweepShardCache = 16

// ChannelSweepOptions parameterizes a sweep.
type ChannelSweepOptions struct {
	// Scale sizes the device and the measured window. Scale.Device.Channels
	// is overridden by each sweep point; DiesPerChannel is honored.
	Scale ExperimentScale
	// Channels lists the channel counts to sweep. Empty means 1,2,4,8.
	Channels []int
	// BatchSize is the number of writes dispatched per engine batch (the
	// queue depth the host keeps). Zero means 8 per die.
	BatchSize int
	// Workload names the generator: "uniform" (default), "sequential",
	// "zipfian" or "hotcold".
	Workload string
}

// generator builds the sweep workload for an engine's logical page count.
func (o ChannelSweepOptions) generator(logicalPages int64) (workload.Generator, error) {
	return workload.ByName(o.Workload, logicalPages, o.Scale.Seed)
}

// ChannelSweep measures write throughput of the sharded GeckoFTL engine
// across channel counts. Every point runs the same logical workload; the
// total RAM budget is held constant by dividing the mapping cache across
// shards. Warm-up fills the device twice over so that each point is measured
// in steady-state garbage collection.
func ChannelSweep(opts ChannelSweepOptions) ([]ChannelPoint, error) {
	if opts.Scale.MeasureWrites <= 0 {
		return nil, fmt.Errorf("sim: measure writes %d must be positive", opts.Scale.MeasureWrites)
	}
	channels := opts.Channels
	if len(channels) == 0 {
		channels = []int{1, 2, 4, 8}
	}
	// Shards that are too small live-lock their garbage collector (every
	// victim stays nearly fully valid), so grow the device until the widest
	// point keeps a healthy number of blocks per shard. The grown geometry
	// applies to every point, keeping the sweep comparable.
	maxChannels := 0
	for _, c := range channels {
		if c > maxChannels {
			maxChannels = c
		}
	}
	if min := MinSweepShardBlocks * maxChannels; opts.Scale.Device.Blocks < min {
		opts.Scale.Device.Blocks = min
	}
	// Likewise grow the cache budget so that dividing it by the widest
	// point still leaves a workable per-shard cache; growing it once, for
	// every point, keeps the total budget constant across the sweep.
	if min := minSweepShardCache * maxChannels; opts.Scale.CacheEntries < min {
		opts.Scale.CacheEntries = min
	}
	var points []ChannelPoint
	for _, c := range channels {
		p, err := channelPoint(opts, c)
		if err != nil {
			return nil, fmt.Errorf("sim: %d channels: %w", c, err)
		}
		points = append(points, p)
	}
	base := points[0].Throughput
	for i := range points {
		points[i].Speedup = points[i].Throughput / base
	}
	return points, nil
}

func channelPoint(opts ChannelSweepOptions, channels int) (ChannelPoint, error) {
	scale := opts.Scale
	spec := scale.Device
	spec.Channels = channels
	dev, err := spec.NewDevice()
	if err != nil {
		return ChannelPoint{}, err
	}
	cfg := dev.Config()

	// Hold the total cache budget constant across sweep points (ChannelSweep
	// has already grown the budget so this never rounds below a workable
	// per-shard cache).
	cachePerShard := scale.CacheEntries / channels
	eng, err := ftl.NewEngine(dev, ftl.GeckoFTLOptions(cachePerShard), 0)
	if err != nil {
		return ChannelPoint{}, err
	}
	gen, err := opts.generator(eng.LogicalPages())
	if err != nil {
		return ChannelPoint{}, err
	}
	batchSize := opts.BatchSize
	if batchSize <= 0 {
		batchSize = 8 * cfg.Dies()
	}

	pump := func(writes int64) error {
		var done int64
		for done < writes {
			_, targets, _ := workload.SplitBatch(workload.TakeBatch(gen, batchSize))
			if len(targets) == 0 {
				continue
			}
			if err := eng.WriteBatch(context.Background(), targets); err != nil {
				return err
			}
			done += int64(len(targets))
		}
		return nil
	}

	if err := pump(2 * eng.LogicalPages()); err != nil {
		return ChannelPoint{}, fmt.Errorf("warm-up: %w", err)
	}

	countersBefore := dev.Counters()
	diesBefore := dev.DieTimes()
	writesBefore := eng.Stats().LogicalWrites
	if err := pump(scale.MeasureWrites); err != nil {
		return ChannelPoint{}, fmt.Errorf("measurement: %w", err)
	}
	writes := eng.Stats().LogicalWrites - writesBefore

	// Each shard drives its dies from a single goroutine, so a shard's
	// critical path is the SUM of its dies' busy time — taking the busiest
	// die instead would credit intra-shard overlap the synchronous shards
	// cannot deliver (it only matters when DiesPerChannel > 1). The
	// engine's wall-clock is the slowest shard; the serial cost is the sum
	// over all dies. Dies are attributed to the shard owning their first
	// block (exact whenever the block count divides evenly, as the grown
	// sweep geometries do).
	diesAfter := dev.DieTimes()
	blocksPerShard := cfg.Blocks / eng.Shards()
	shardBusy := make([]time.Duration, eng.Shards())
	var maxDie, sum time.Duration
	for d := range diesAfter {
		busy := diesAfter[d] - diesBefore[d]
		sum += busy
		if busy > maxDie {
			maxDie = busy
		}
		lo, _ := cfg.DieBlockRange(d)
		if s := int(lo) / blocksPerShard; s < len(shardBusy) {
			shardBusy[s] += busy
		}
	}
	var wall time.Duration
	for _, busy := range shardBusy {
		if busy > wall {
			wall = busy
		}
	}
	if wall < maxDie {
		wall = maxDie
	}
	p := ChannelPoint{
		Channels:   channels,
		Dies:       cfg.Dies(),
		Writes:     writes,
		WallTime:   wall,
		SerialTime: sum,
	}
	delta := cfg.Latency.WriteReadRatio()
	p.WA = dev.Counters().Sub(countersBefore).WriteAmplification(writes, delta)
	if p.WallTime > 0 {
		p.Throughput = float64(writes) / p.WallTime.Seconds()
	}
	params := model.ParallelParams{Channels: channels, DiesPerChannel: spec.DiesPerChannel}
	p.ModelThroughput = params.WriteThroughput(cfg.Latency, p.WA)
	if sum > 0 {
		p.LoadImbalance = float64(maxDie) * float64(len(diesAfter)) / float64(sum)
	}
	return p, nil
}
