// Package sim is the experiment harness that reproduces the evaluation
// section of the GeckoFTL paper and the engine-scaling experiments that go
// beyond it. It runs FTLs (or Logarithmic Gecko and the PVB baselines in
// isolation) against workload generators on the simulated device, collects
// per-purpose IO breakdowns, and exposes one driver per table and figure of
// the paper. The cmd/geckobench tool and the module-level benchmarks print
// the drivers' results.
//
// The sweep drivers extend the paper to the multi-channel engine:
//
//   - ChannelSweep measures how the sharded engine's write throughput scales
//     with the channel count.
//   - RecoverySweep crashes the engine and measures how parallel per-shard
//     recovery scales with channels, checkpoint interval and capacity.
//   - LatencySweep records per-write service-time distributions (p50 through
//     p99.9 and max) and compares inline whole-victim garbage collection
//     against the incremental bounded scheduler across victim policies and
//     workloads.
//   - TrimSweep interleaves host trims at increasing fractions and shows
//     write-amplification falling monotonically.
//   - WearSweep compares the single user write frontier against hot/cold
//     separation and wear-aware allocation, reporting write-amplification
//     and erase-count spread per victim policy and workload.
//
// All sweep results are deterministic: time is the device's simulated
// latency model, never the host clock.
package sim
