package sim

import "testing"

func TestChannelSweep(t *testing.T) {
	scale := QuickScale()
	scale.MeasureWrites = 2000
	points, err := ChannelSweep(ChannelSweepOptions{Scale: scale, Channels: []int{1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	one, four := points[0], points[1]
	if one.Channels != 1 || four.Channels != 4 {
		t.Fatalf("unexpected channel counts %d, %d", one.Channels, four.Channels)
	}
	if one.Speedup != 1 {
		t.Errorf("1-channel speedup = %f, want 1", one.Speedup)
	}
	// On one channel the wall-clock is the serial time; on four, well below.
	if one.WallTime != one.SerialTime {
		t.Errorf("1-channel wall %v != serial %v", one.WallTime, one.SerialTime)
	}
	if four.WallTime >= four.SerialTime/2 {
		t.Errorf("4-channel wall %v not under half of serial %v", four.WallTime, four.SerialTime)
	}
	if four.Speedup < 2 {
		t.Errorf("4-channel speedup %.2fx, want >= 2x", four.Speedup)
	}
	for _, p := range points {
		if p.Writes < scale.MeasureWrites {
			t.Errorf("%d channels measured %d writes, want >= %d", p.Channels, p.Writes, scale.MeasureWrites)
		}
		if p.WA < 1 {
			t.Errorf("%d channels WA %.3f, want >= 1", p.Channels, p.WA)
		}
		if p.Throughput <= 0 || p.ModelThroughput <= 0 {
			t.Errorf("%d channels throughput %.1f / model %.1f, want positive", p.Channels, p.Throughput, p.ModelThroughput)
		}
		if p.LoadImbalance < 1 {
			t.Errorf("%d channels load imbalance %.3f, want >= 1", p.Channels, p.LoadImbalance)
		}
	}
}

func TestChannelSweepWorkloads(t *testing.T) {
	scale := QuickScale()
	scale.MeasureWrites = 500
	for _, wl := range []string{"sequential", "zipfian", "hotcold"} {
		points, err := ChannelSweep(ChannelSweepOptions{Scale: scale, Channels: []int{2}, Workload: wl})
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		if points[0].Throughput <= 0 {
			t.Errorf("%s: non-positive throughput", wl)
		}
	}
	if _, err := ChannelSweep(ChannelSweepOptions{Scale: scale, Channels: []int{1}, Workload: "nope"}); err == nil {
		t.Error("expected unknown workload to fail")
	}
	var zero ExperimentScale
	if _, err := ChannelSweep(ChannelSweepOptions{Scale: zero}); err == nil {
		t.Error("expected zero MeasureWrites to fail instead of yielding NaN speedups")
	}
}

// TestChannelSweepSynchronousDies pins the honesty of the wall-clock: a
// single shard drives all of its dies synchronously, so with 1 channel the
// wall-clock equals the serial time no matter how many dies the channel has.
func TestChannelSweepSynchronousDies(t *testing.T) {
	scale := QuickScale()
	scale.MeasureWrites = 1000
	scale.Device.DiesPerChannel = 4
	points, err := ChannelSweep(ChannelSweepOptions{Scale: scale, Channels: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	p := points[0]
	if p.Dies != 4 {
		t.Fatalf("Dies = %d, want 4", p.Dies)
	}
	if p.WallTime != p.SerialTime {
		t.Errorf("1-shard wall %v != serial %v: wall-clock credits die overlap a synchronous shard cannot deliver", p.WallTime, p.SerialTime)
	}
}
