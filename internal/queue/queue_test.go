package queue

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"geckoftl/internal/flash"
)

// testEngine builds an engine over an in-memory executor: ShardOf is a modulo
// route, Exec optionally gates on a channel, and the virtual clock is a fixed
// per-test value (virtual admission compares it against request arrivals).
type testEngine struct {
	*Engine
	execed   atomic.Int64
	advanced atomic.Int64 // last Advance instant, nanoseconds
	gate     chan struct{}
	gateOnce sync.Once
}

type testConfig struct {
	shards  int
	depth   int
	policy  Policy
	clock   time.Duration // fixed Clock value; negative disables the hook
	gate    chan struct{} // if non-nil, Exec receives from it before returning
	execErr error
}

// closeGate releases the engine's Exec gate (idempotently), so cleanup can
// always unblock the workers before Close waits for them.
func (te *testEngine) closeGate() {
	if te.gate != nil {
		te.gateOnce.Do(func() { close(te.gate) })
	}
}

func newTestEngine(t *testing.T, tc testConfig) *testEngine {
	t.Helper()
	te := &testEngine{gate: tc.gate}
	cfg := Config{
		Shards:  tc.shards,
		Depth:   tc.depth,
		Policy:  tc.policy,
		Quantum: time.Millisecond,
		ShardOf: func(lpn flash.LPN) (int, error) {
			return int(lpn) % tc.shards, nil
		},
		Exec: func(shard int, req Request) error {
			if tc.gate != nil {
				<-tc.gate
			}
			te.execed.Add(1)
			return tc.execErr
		},
	}
	if tc.clock >= 0 {
		cfg.Clock = func(shard int) time.Duration { return tc.clock }
		cfg.Advance = func(shard int, at time.Duration) { te.advanced.Store(int64(at)) }
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	te.Engine = eng
	t.Cleanup(func() {
		te.closeGate()
		eng.Close()
	})
	return te
}

// waitWorkerIdle spins until shard's transport queue is empty, i.e. the worker
// has dequeued everything submitted so far (it may still be executing).
func waitWorkerIdle(t *testing.T, e *Engine, shard int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for len(e.shards[shard].ch) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("shard %d queue never drained", shard)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestNewValidation(t *testing.T) {
	shardOf := func(lpn flash.LPN) (int, error) { return 0, nil }
	exec := func(shard int, req Request) error { return nil }
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no shards", Config{Depth: 1, ShardOf: shardOf, Exec: exec}},
		{"no depth", Config{Shards: 1, ShardOf: shardOf, Exec: exec}},
		{"bad policy", Config{Shards: 1, Depth: 1, Policy: Policy(7), ShardOf: shardOf, Exec: exec}},
		{"no hooks", Config{Shards: 1, Depth: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.cfg); err == nil {
				t.Errorf("New(%+v) accepted an invalid config", tc.cfg)
			}
		})
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range []Policy{AdmitShed, AdmitWait} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", p.String(), got, err, p)
		}
	}
	if _, err := ParsePolicy("drop"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy name")
	}
}

func TestSubmitCompletes(t *testing.T) {
	e := newTestEngine(t, testConfig{shards: 2, depth: 4, policy: AdmitWait, clock: -1})
	var tickets []*Ticket
	for i := 0; i < 8; i++ {
		tk, err := e.Submit(context.Background(), Request{Kind: OpWrite, LPN: flash.LPN(i)})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if err := tk.Err(); err != ErrPending && err != nil {
			t.Fatalf("Ticket.Err before completion = %v; want ErrPending or nil", err)
		}
		tickets = append(tickets, tk)
	}
	for i, tk := range tickets {
		if err := tk.Wait(context.Background()); err != nil {
			t.Errorf("ticket %d: %v", i, err)
		}
	}
	st := e.Stats()
	if st.Submitted != 8 || st.Completed != 8 || st.InFlight != 0 || st.Shed != 0 {
		t.Errorf("stats after 8 ops: %+v", st)
	}
	if n := e.execed.Load(); n != 8 {
		t.Errorf("executor ran %d times, want 8", n)
	}
}

func TestExecErrorReachesTicket(t *testing.T) {
	boom := errors.New("media failure")
	e := newTestEngine(t, testConfig{shards: 1, depth: 2, policy: AdmitWait, clock: -1, execErr: boom})
	tk, err := e.Submit(context.Background(), Request{Kind: OpWrite, LPN: 0})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := tk.Wait(nil); !errors.Is(err, boom) {
		t.Errorf("ticket error = %v; want %v", err, boom)
	}
	if st := e.Stats(); st.Completed != 1 {
		t.Errorf("an executed-but-failed op must count as completed: %+v", st)
	}
}

func TestTransportShedWhenFull(t *testing.T) {
	gate := make(chan struct{})
	e := newTestEngine(t, testConfig{shards: 1, depth: 1, policy: AdmitShed, clock: -1, gate: gate})
	// First op occupies the worker, second fills the depth-1 transport queue.
	first, err := e.Submit(context.Background(), Request{Kind: OpWrite, LPN: 0})
	if err != nil {
		t.Fatalf("Submit 1: %v", err)
	}
	waitWorkerIdle(t, e.Engine, 0) // the worker holds op 1; op 2 fills the queue
	second, err := e.Submit(context.Background(), Request{Kind: OpWrite, LPN: 0})
	if err != nil {
		t.Fatalf("Submit 2: %v", err)
	}
	// The transport is now full: an untimed shed-policy submission fails fast.
	if _, err := e.Submit(context.Background(), Request{Kind: OpWrite, LPN: 0}); !errors.Is(err, ErrFull) {
		t.Fatalf("Submit on full queue = %v; want ErrFull", err)
	}
	e.closeGate()
	for _, tk := range []*Ticket{first, second} {
		if err := tk.Wait(context.Background()); err != nil {
			t.Errorf("admitted op failed: %v", err)
		}
	}
	st := e.Stats()
	if st.Shed != 1 || st.Completed != 2 {
		t.Errorf("stats: %+v; want 1 shed, 2 completed", st)
	}
}

func TestSubmitBlocksUnderWaitPolicy(t *testing.T) {
	gate := make(chan struct{})
	e := newTestEngine(t, testConfig{shards: 1, depth: 1, policy: AdmitWait, clock: -1, gate: gate})
	if _, err := e.Submit(context.Background(), Request{Kind: OpWrite, LPN: 0}); err != nil {
		t.Fatalf("Submit 1: %v", err)
	}
	waitWorkerIdle(t, e.Engine, 0)
	if _, err := e.Submit(context.Background(), Request{Kind: OpWrite, LPN: 0}); err != nil {
		t.Fatalf("Submit 2: %v", err)
	}
	// Transport full; a wait-policy Submit blocks until ctx dies.
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(10*time.Millisecond, cancel)
	if _, err := e.Submit(ctx, Request{Kind: OpWrite, LPN: 0}); !errors.Is(err, context.Canceled) {
		t.Fatalf("blocked Submit = %v; want context.Canceled", err)
	}
	e.closeGate()
}

func TestVirtualAdmissionSheds(t *testing.T) {
	// Clock far ahead of the request's arrival: backlog 100ms against a
	// 4 x 1ms budget, so a shed-policy timed request must fail via its ticket.
	e := newTestEngine(t, testConfig{shards: 1, depth: 4, policy: AdmitShed, clock: 100 * time.Millisecond})
	tk, err := e.Submit(context.Background(), Request{Kind: OpWrite, LPN: 0, Arrival: 0, Timed: true})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := tk.Wait(context.Background()); !errors.Is(err, ErrFull) {
		t.Fatalf("ticket error = %v; want ErrFull", err)
	}
	if tk.CompletedAt() != 0 {
		t.Errorf("shed op has completion instant %v", tk.CompletedAt())
	}
	st := e.Stats()
	if st.Shed != 1 || st.Completed != 0 || e.execed.Load() != 0 {
		t.Errorf("shed op must not execute: %+v, execed=%d", st, e.execed.Load())
	}
	// An arrival inside the budget is admitted and executed.
	tk, err = e.Submit(context.Background(), Request{Kind: OpWrite, LPN: 0, Arrival: 99 * time.Millisecond, Timed: true})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := tk.Wait(context.Background()); err != nil {
		t.Fatalf("in-budget op failed: %v", err)
	}
	if at := time.Duration(e.advanced.Load()); at != 99*time.Millisecond {
		t.Errorf("arrival advanced to %v; want 99ms", at)
	}
}

func TestVirtualAdmissionWaitRestampsArrival(t *testing.T) {
	e := newTestEngine(t, testConfig{shards: 1, depth: 4, policy: AdmitWait, clock: 100 * time.Millisecond})
	tk, err := e.Submit(context.Background(), Request{Kind: OpWrite, LPN: 0, Arrival: 0, Timed: true})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := tk.Wait(context.Background()); err != nil {
		t.Fatalf("delayed op failed: %v", err)
	}
	// The effective arrival is pushed to clock minus budget: the instant the
	// backlog last fit, i.e. when a blocked producer would have been released.
	if want := 96 * time.Millisecond; tk.Arrival() != want {
		t.Errorf("effective arrival %v; want %v", tk.Arrival(), want)
	}
	st := e.Stats()
	if st.Delayed != 1 || st.Shed != 0 || st.Completed != 1 {
		t.Errorf("stats: %+v; want 1 delayed, 1 completed", st)
	}
	if st.Latency.Count != 1 || st.Latency.Max != 4*time.Millisecond {
		t.Errorf("latency %+v; want one 4ms sample (completion 100ms - arrival 96ms)", st.Latency)
	}
}

func TestCancelledContextFailsQueuedOps(t *testing.T) {
	gate := make(chan struct{})
	e := newTestEngine(t, testConfig{shards: 1, depth: 8, policy: AdmitWait, clock: -1, gate: gate})
	blocker, err := e.Submit(context.Background(), Request{Kind: OpWrite, LPN: 0})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var doomed []*Ticket
	for i := 0; i < 5; i++ {
		tk, err := e.Submit(ctx, Request{Kind: OpWrite, LPN: 0})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		doomed = append(doomed, tk)
	}
	cancel()
	gate <- struct{}{} // release the blocker only; doomed ops observe the dead ctx
	e.closeGate()
	if err := blocker.Wait(context.Background()); err != nil {
		t.Fatalf("pre-cancel op failed: %v", err)
	}
	for i, tk := range doomed {
		if err := tk.Wait(context.Background()); !errors.Is(err, context.Canceled) {
			t.Errorf("queued op %d after cancel: %v; want context.Canceled", i, err)
		}
	}
	st := e.Stats()
	if st.Cancelled != 5 || st.Completed != 1 {
		t.Errorf("stats: %+v; want 5 cancelled, 1 completed", st)
	}
	if n := e.execed.Load(); n != 1 {
		t.Errorf("executor ran %d times; cancelled ops must not execute", n)
	}
}

func TestDrainWaitsForSubmitted(t *testing.T) {
	e := newTestEngine(t, testConfig{shards: 4, depth: 4, policy: AdmitWait, clock: -1})
	for i := 0; i < 32; i++ {
		if _, err := e.Submit(context.Background(), Request{Kind: OpWrite, LPN: flash.LPN(i)}); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	if err := e.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	st := e.Stats()
	if st.Completed != 32 || st.InFlight != 0 {
		t.Errorf("after Drain: %+v; want 32 completed, 0 in flight", st)
	}
}

func TestCloseStopsSubmissions(t *testing.T) {
	e := newTestEngine(t, testConfig{shards: 2, depth: 4, policy: AdmitShed, clock: -1})
	var tickets []*Ticket
	for i := 0; i < 6; i++ {
		tk, err := e.Submit(context.Background(), Request{Kind: OpWrite, LPN: flash.LPN(i)})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		tickets = append(tickets, tk)
	}
	e.Close()
	e.Close() // idempotent
	// Close drains: everything queued before it completes.
	for i, tk := range tickets {
		if err := tk.Err(); err != nil {
			t.Errorf("op %d after Close: %v", i, err)
		}
	}
	if _, err := e.Submit(context.Background(), Request{Kind: OpWrite, LPN: 0}); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v; want ErrClosed", err)
	}
	if err := e.Drain(context.Background()); !errors.Is(err, ErrClosed) {
		t.Errorf("Drain after Close = %v; want ErrClosed", err)
	}
}

func TestResetLatency(t *testing.T) {
	e := newTestEngine(t, testConfig{shards: 1, depth: 4, policy: AdmitWait, clock: 5 * time.Millisecond})
	tk, err := e.Submit(context.Background(), Request{Kind: OpWrite, LPN: 0, Arrival: 4 * time.Millisecond, Timed: true})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := tk.Wait(nil); err != nil {
		t.Fatalf("op failed: %v", err)
	}
	if st := e.Stats(); st.Latency.Count != 1 {
		t.Fatalf("latency count %d; want 1", st.Latency.Count)
	}
	e.ResetLatency()
	st := e.Stats()
	if st.Latency.Count != 0 {
		t.Errorf("latency count %d after reset; want 0", st.Latency.Count)
	}
	if st.Completed != 1 {
		t.Errorf("ResetLatency must not clear counters: %+v", st)
	}
}

// TestSubmitCompleteHammer drives concurrent producers, a Drain caller, and a
// Stats poller through the engine to give the race detector the whole
// submit/complete path. Counter accounting must balance at the end.
func TestSubmitCompleteHammer(t *testing.T) {
	const producers, perProducer = 8, 200
	e := newTestEngine(t, testConfig{shards: 4, depth: 8, policy: AdmitShed, clock: -1})
	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(2)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				e.Stats()
			}
		}
	}()
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = e.Drain(context.Background())
			}
		}
	}()
	var wg sync.WaitGroup
	var shed atomic.Int64
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				tk, err := e.Submit(context.Background(), Request{Kind: OpKind(i % 3), LPN: flash.LPN(p*perProducer + i)})
				if errors.Is(err, ErrFull) {
					shed.Add(1)
					continue
				}
				if err != nil {
					t.Errorf("producer %d: %v", p, err)
					return
				}
				if i%4 == 0 {
					if err := tk.Wait(context.Background()); err != nil {
						t.Errorf("producer %d wait: %v", p, err)
						return
					}
				}
			}
		}(p)
	}
	wg.Wait()
	if err := e.Drain(context.Background()); err != nil {
		t.Fatalf("final Drain: %v", err)
	}
	close(stop)
	aux.Wait()
	st := e.Stats()
	if st.Submitted != producers*perProducer {
		t.Errorf("submitted %d; want %d", st.Submitted, producers*perProducer)
	}
	if st.Completed+st.Shed != st.Submitted || st.Shed != shed.Load() {
		t.Errorf("accounting: %+v vs %d observed sheds", st, shed.Load())
	}
	if st.InFlight != 0 {
		t.Errorf("in flight %d after drain; want 0", st.InFlight)
	}
}
