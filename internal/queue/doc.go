// Package queue is the asynchronous submission/completion engine: per-shard
// submission queues of configurable depth in front of the sharded FTL engine,
// io_uring-style. A host goroutine submits an operation and receives a Ticket
// (a future) instead of parking until the op's die frees up; one worker
// goroutine per shard executes submissions in FIFO order and completes the
// tickets. Decoupling submission from execution is what lets a single caller
// keep Channels × DiesPerChannel dies busy: each shard's virtual timeline
// advances independently, so measured throughput is bounded by the topology,
// not by caller concurrency.
//
// Admission control keeps overload from collapsing tail latency. Every
// operation carries a virtual arrival instant; the queue's budget is
// Depth × Quantum of backlog (depth expressed in service slots). An operation
// arriving when its shard is further behind than the budget is either shed
// with ErrFull (AdmitShed — the op is dropped and counted, completed work
// keeps a bounded p99.9) or admitted as delayed (AdmitWait — never dropped,
// the wait is accounted from the instant the queue had room and counted).
// Admission decisions are made by the shard worker against the shard's own
// virtual clock, in submission order, so for a single submitting goroutine
// the shed/delay pattern is deterministic regardless of host scheduling.
//
// The queue is glued to the layers below through Config's hooks (ShardOf,
// Exec, Clock, Advance) rather than importing them, so it can front any
// sharded executor with a virtual clock.
package queue
