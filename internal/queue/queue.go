package queue

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"geckoftl/internal/flash"
	"geckoftl/internal/stats"
)

var (
	// ErrFull is returned (on the Submit call for a full transport queue,
	// through the Ticket for a shed admission) when AdmitShed drops an
	// operation instead of letting backlog grow past the depth budget.
	ErrFull = errors.New("queue: submission queue is full")
	// ErrClosed is returned by Submit and Drain after Close.
	ErrClosed = errors.New("queue: engine is closed")
	// ErrPending is returned by Ticket.Err while the operation is still in
	// flight.
	ErrPending = errors.New("queue: operation still in flight")
)

// Policy selects what admission control does with an operation that arrives
// when its shard's backlog already exceeds the depth budget.
type Policy int

const (
	// AdmitShed drops the operation: the submission fails fast with ErrFull
	// (or the Ticket completes with it) and the drop is counted. Completed
	// operations keep a bounded tail because nothing ever waits behind more
	// than the budget.
	AdmitShed Policy = iota
	// AdmitWait admits the operation anyway: the transport send blocks until
	// there is room (honouring ctx), the overflow is counted as a delay, and
	// the operation's waiting time is accounted from the instant the queue
	// had room for it. Nothing is ever dropped.
	AdmitWait
)

// String returns the flag-friendly policy name.
func (p Policy) String() string {
	switch p {
	case AdmitShed:
		return "shed"
	case AdmitWait:
		return "wait"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy maps "shed" or "wait" to the Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "shed":
		return AdmitShed, nil
	case "wait":
		return AdmitWait, nil
	default:
		return 0, fmt.Errorf("queue: unknown admission policy %q (want shed or wait)", s)
	}
}

// OpKind is the operation type of a submission.
type OpKind int

const (
	// OpWrite updates a logical page.
	OpWrite OpKind = iota
	// OpRead reads a logical page.
	OpRead
	// OpTrim discards a logical page.
	OpTrim
	// opBarrier is Drain's internal fence: it completes when every earlier
	// submission of its shard has completed, executes nothing, and bypasses
	// admission control.
	opBarrier OpKind = -1
)

// Request is one submitted operation.
type Request struct {
	// Kind is the operation type.
	Kind OpKind
	// LPN is the logical page the operation targets.
	LPN flash.LPN
	// Arrival is the operation's virtual arrival instant; meaningful only
	// when Timed. Open-loop generators stamp it from their arrival process;
	// the public API stamps the host's last observed device instant.
	Arrival time.Duration
	// Timed enables virtual-time accounting for the request: admission
	// control measures the shard's backlog against Arrival, the shard's
	// arrival clock is ratcheted to it before execution (so the op cannot
	// start before it arrived), and the submission-to-completion latency is
	// recorded. Untimed requests skip all three.
	Timed bool
}

// Config wires an Engine to the executor underneath it.
type Config struct {
	// Shards is the number of submission queues (one per executor shard).
	Shards int
	// Depth is the per-shard queue depth: both the transport capacity and,
	// times Quantum, the virtual backlog budget admission control enforces.
	Depth int
	// Policy selects what admission control does at the budget; see
	// AdmitShed and AdmitWait.
	Policy Policy
	// Quantum is the service-slot estimate admission control multiplies
	// Depth by to obtain the backlog budget; typically the device's
	// page-program latency. Zero selects a millisecond.
	Quantum time.Duration
	// ShardOf routes a logical page to its shard.
	ShardOf func(lpn flash.LPN) (int, error)
	// Exec executes one admitted request on its shard. It is called from the
	// shard's worker goroutine only, one call at a time per shard.
	Exec func(shard int, req Request) error
	// Clock returns the shard's current virtual completion instant; nil
	// disables virtual admission and latency accounting.
	Clock func(shard int) time.Duration
	// Advance ratchets the shard's arrival clock forward to at least t; nil
	// disables pre-execution arrival stamping.
	Advance func(shard int, t time.Duration)
}

// Ticket is the future of one submission: it completes when the operation
// has executed (or been shed or cancelled), carrying the outcome.
type Ticket struct {
	done chan struct{}
	// The fields below are written by the shard worker before done is
	// closed; readers may touch them only after observing Done.
	err         error
	arrival     time.Duration
	completedAt time.Duration
}

// Done returns a channel closed when the operation has completed.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Err returns the operation's outcome: nil for success, ErrFull for a shed
// admission, the submission ctx's error for a cancellation observed before
// execution, the executor's error otherwise. Before completion it returns
// ErrPending.
func (t *Ticket) Err() error {
	select {
	case <-t.done:
		return t.err
	default:
		return ErrPending
	}
}

// Wait blocks until the operation completes or ctx is cancelled, returning
// the operation's outcome (or ctx's error). A nil ctx waits indefinitely.
func (t *Ticket) Wait(ctx context.Context) error {
	if ctx == nil {
		<-t.done
		return t.err
	}
	select {
	case <-t.done:
		return t.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Arrival returns the operation's effective virtual arrival instant: the
// stamped arrival, pushed forward to the instant the queue had room when
// AdmitWait delayed it. Closed-loop drivers read it to advance their producer
// clock. Valid once Done is closed.
func (t *Ticket) Arrival() time.Duration { return t.arrival }

// CompletedAt returns the operation's virtual completion instant on its
// shard's timeline; zero for shed or cancelled operations. Valid once Done
// is closed.
func (t *Ticket) CompletedAt() time.Duration { return t.completedAt }

// item is one queued submission.
type item struct {
	ctx context.Context
	req Request
	tk  *Ticket
}

// shardQueue is one shard's submission queue and its counters.
type shardQueue struct {
	// mu guards ch against Close: submitters send under RLock, Close closes
	// the channel under Lock.
	mu     sync.RWMutex
	ch     chan *item
	closed bool

	submitted atomic.Int64
	completed atomic.Int64
	shed      atomic.Int64
	delayed   atomic.Int64
	cancelled atomic.Int64
	inFlight  atomic.Int64

	// latMu guards lat: the worker records, Stats merges.
	latMu sync.Mutex
	lat   *stats.Histogram
}

// Stats is the queue's instrumentation: cumulative counters and, for timed
// submissions, the submission-to-completion latency distribution (queueing
// behind the shard's backlog included).
type Stats struct {
	// Depth is the configured per-shard queue depth.
	Depth int
	// Policy is the configured admission policy's name.
	Policy string
	// Submitted counts submissions accepted by Submit (sheds at the full
	// transport included, barriers excluded).
	Submitted int64
	// Completed counts operations that executed, successfully or not.
	Completed int64
	// Shed counts operations dropped by AdmitShed admission control.
	Shed int64
	// Delayed counts operations AdmitWait admitted past the backlog budget.
	Delayed int64
	// Cancelled counts operations whose submission ctx was observed
	// cancelled before execution.
	Cancelled int64
	// InFlight is the number of submissions currently queued or executing.
	InFlight int64
	// Latency is the timed submissions' arrival-to-completion distribution.
	Latency stats.Summary
}

// Engine is the asynchronous submission/completion engine; build one with
// New, submit with Submit, stop it with Close.
type Engine struct {
	cfg    Config
	budget time.Duration
	shards []*shardQueue
	closed atomic.Bool
	wg     sync.WaitGroup
}

// New validates cfg, starts one worker goroutine per shard and returns the
// running engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("queue: shard count %d must be at least 1", cfg.Shards)
	}
	if cfg.Depth < 1 {
		return nil, fmt.Errorf("queue: depth %d must be at least 1", cfg.Depth)
	}
	if cfg.Policy != AdmitShed && cfg.Policy != AdmitWait {
		return nil, fmt.Errorf("queue: unknown admission policy %v", cfg.Policy)
	}
	if cfg.ShardOf == nil || cfg.Exec == nil {
		return nil, errors.New("queue: ShardOf and Exec hooks are required")
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = time.Millisecond
	}
	e := &Engine{cfg: cfg, budget: time.Duration(cfg.Depth) * cfg.Quantum}
	for i := 0; i < cfg.Shards; i++ {
		e.shards = append(e.shards, &shardQueue{
			ch:  make(chan *item, cfg.Depth),
			lat: stats.NewHistogram(),
		})
	}
	for i := range e.shards {
		e.wg.Add(1)
		go e.worker(i)
	}
	return e, nil
}

// Submit enqueues one operation and returns its Ticket. Under AdmitShed a
// full transport queue fails fast with ErrFull (and no Ticket); under
// AdmitWait the send blocks until there is room, honouring ctx. The deeper
// admission decision — whether the shard's virtual backlog exceeds the depth
// budget — is made by the shard worker in submission order and delivered
// through the Ticket. ctx is also consulted by the worker before execution,
// so cancelling it fails queued-but-unexecuted operations with ctx's error.
//
//geckolint:hotpath
func (e *Engine) Submit(ctx context.Context, req Request) (*Ticket, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	s, err := e.cfg.ShardOf(req.LPN)
	if err != nil {
		return nil, err
	}
	sq := e.shards[s]
	sq.submitted.Add(1)
	//geckolint:ignore hotalloc the two allocations per submission are the API: the item outlives the call on the worker's queue and the Ticket is the future handed back; a zero-alloc completion-callback path is the ROADMAP follow-on
	it := &item{ctx: ctx, req: req, tk: &Ticket{done: make(chan struct{})}}
	sq.inFlight.Add(1)
	if err := e.send(ctx, sq, it); err != nil {
		sq.inFlight.Add(-1)
		return nil, err
	}
	return it.tk, nil
}

// send performs the transport admission: a non-blocking attempt first, then
// policy-dependent handling of a full queue. Only untimed requests shed here
// — the transport queue reflects host-time backlog, which is the right
// admission domain for a host submitting without virtual arrival stamps. A
// timed request's admission is decided by the shard worker against the
// virtual clock instead (deterministically, in submission order), so its
// transport send always blocks for room.
//
//geckolint:hotpath
func (e *Engine) send(ctx context.Context, sq *shardQueue, it *item) error {
	sq.mu.RLock()
	defer sq.mu.RUnlock()
	if sq.closed {
		return ErrClosed
	}
	select {
	case sq.ch <- it:
		return nil
	default:
	}
	if e.cfg.Policy == AdmitShed && !it.req.Timed && it.req.Kind != opBarrier {
		sq.shed.Add(1)
		return ErrFull
	}
	if ctx == nil {
		sq.ch <- it
		return nil
	}
	select {
	case sq.ch <- it:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker drains shard s's queue in FIFO order until Close closes it,
// executing each admitted item and completing its ticket.
//
//geckolint:hotpath
func (e *Engine) worker(s int) {
	defer e.wg.Done()
	sq := e.shards[s]
	for it := range sq.ch {
		e.process(s, sq, it)
	}
}

// finish completes a ticket.
//
//geckolint:hotpath
func finish(tk *Ticket, arrival, completedAt time.Duration, err error) {
	tk.arrival = arrival
	tk.completedAt = completedAt
	tk.err = err
	close(tk.done)
}

// process admits and executes one dequeued item. Virtual admission happens
// here, on the worker, because only the worker sees the shard's clock advance
// in submission order: a shed/delay decision is then a pure function of the
// shard's arrival stream, deterministic regardless of host scheduling.
//
//geckolint:hotpath
func (e *Engine) process(s int, sq *shardQueue, it *item) {
	if it.req.Kind == opBarrier {
		finish(it.tk, it.req.Arrival, 0, nil)
		return
	}
	defer sq.inFlight.Add(-1)
	// The cancellation boundary: an operation whose submission ctx died
	// while queued fails here, before any IO.
	if it.ctx != nil {
		if err := it.ctx.Err(); err != nil {
			sq.cancelled.Add(1)
			finish(it.tk, it.req.Arrival, 0, err)
			return
		}
	}
	arr := it.req.Arrival
	timed := it.req.Timed && e.cfg.Clock != nil
	if timed {
		if lag := e.cfg.Clock(s) - arr; lag > e.budget {
			switch e.cfg.Policy {
			case AdmitShed:
				sq.shed.Add(1)
				finish(it.tk, arr, 0, ErrFull)
				return
			case AdmitWait:
				// Admit, accounting the wait from the instant the backlog
				// last fit the budget — the instant a blocked producer
				// would have been released to submit.
				sq.delayed.Add(1)
				arr = e.cfg.Clock(s) - e.budget
			}
		}
		if e.cfg.Advance != nil {
			e.cfg.Advance(s, arr)
		}
	}
	err := e.cfg.Exec(s, it.req)
	sq.completed.Add(1)
	var done time.Duration
	if e.cfg.Clock != nil {
		done = e.cfg.Clock(s)
	}
	if timed && err == nil {
		sq.latMu.Lock()
		sq.lat.Record(done - arr)
		sq.latMu.Unlock()
	}
	finish(it.tk, arr, done, err)
}

// Drain blocks until every operation submitted before the call has completed,
// by fencing each shard's queue with a barrier and waiting for all of them.
// Operations submitted concurrently with Drain may or may not be covered.
func (e *Engine) Drain(ctx context.Context) error {
	if e.closed.Load() {
		return ErrClosed
	}
	tickets := make([]*Ticket, 0, len(e.shards))
	for _, sq := range e.shards {
		it := &item{req: Request{Kind: opBarrier}, tk: &Ticket{done: make(chan struct{})}}
		if err := e.send(ctx, sq, it); err != nil {
			return err
		}
		tickets = append(tickets, it.tk)
	}
	for _, tk := range tickets {
		if err := tk.Wait(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Close stops the engine: new submissions fail with ErrClosed, already
// queued operations execute to completion, and the shard workers exit.
// Close is idempotent and safe to call concurrently with Submit.
func (e *Engine) Close() {
	if e.closed.Swap(true) {
		return
	}
	for _, sq := range e.shards {
		sq.mu.Lock()
		sq.closed = true
		close(sq.ch)
		sq.mu.Unlock()
	}
	e.wg.Wait()
}

// Stats sums the shards' counters and merges their latency histograms.
func (e *Engine) Stats() Stats {
	merged := stats.NewHistogram()
	out := Stats{Depth: e.cfg.Depth, Policy: e.cfg.Policy.String()}
	for _, sq := range e.shards {
		out.Submitted += sq.submitted.Load()
		out.Completed += sq.completed.Load()
		out.Shed += sq.shed.Load()
		out.Delayed += sq.delayed.Load()
		out.Cancelled += sq.cancelled.Load()
		out.InFlight += sq.inFlight.Load()
		sq.latMu.Lock()
		merged.Merge(sq.lat)
		sq.latMu.Unlock()
	}
	if out.InFlight < 0 {
		out.InFlight = 0
	}
	out.Latency = merged.Summary()
	return out
}

// ResetLatency empties the latency histograms (counters are untouched),
// typically after a warm-up phase.
func (e *Engine) ResetLatency() {
	for _, sq := range e.shards {
		sq.latMu.Lock()
		sq.lat.Reset()
		sq.latMu.Unlock()
	}
}
