package geckoftl

import (
	"errors"
	"fmt"

	"geckoftl/internal/checkpoint"
	"geckoftl/internal/flash"
	"geckoftl/internal/queue"
)

// The public error taxonomy. Every data-path failure a Device method returns
// — closed device, lost power, bad address, rejected configuration — matches
// exactly one of these sentinels under errors.Is (or is a context error from
// the caller's ctx); the sentinels wrap the internal errors they classify,
// so the full internal chain stays inspectable. Misuse and audit failures
// outside the taxonomy (Recover without a preceding PowerFail, a failed
// CheckConsistency) are returned as descriptive errors matching none of the
// sentinels.
var (
	// ErrClosed is returned by operations on a Device after Close.
	ErrClosed = errors.New("geckoftl: device is closed")
	// ErrPowerFailed is returned while the device is in the power-failed
	// state: by operations issued between PowerFail and a successful
	// Recover, and by a second PowerFail.
	ErrPowerFailed = errors.New("geckoftl: device is power-failed")
	// ErrOutOfRange is returned for logical pages outside [0, LogicalPages).
	ErrOutOfRange = errors.New("geckoftl: logical page out of range")
	// ErrInvalidConfig is returned by Open for option combinations the
	// device or FTL rejects, and by the workload constructors and flag
	// parsers (WorkloadByName, NewZipfian, ParseGCMode, ...) for rejected
	// parameters.
	ErrInvalidConfig = errors.New("geckoftl: invalid configuration")
	// ErrReadDecayed is returned by Read when the page's payload decayed
	// from read disturb before the FTL relocated it. It only arises under a
	// fault plan with a ReadDisturbLimit (WithFaultPlan) and signals real
	// data loss; configure WithScrubReadThreshold below the limit to prevent
	// it.
	ErrReadDecayed = errors.New("geckoftl: page payload decayed before scrub")
	// ErrCheckpointInvalid classifies a rejected metadata checkpoint: bad
	// magic, version skew, truncation, a checksum mismatch, or a stale
	// content sequence versus device truth. It is never returned by Open or
	// Restart — a rejected checkpoint falls back to a cold start / GeckoRec
	// — but is inspectable via CheckpointLoad.Err and RestartReport.Fallback
	// under errors.Is.
	ErrCheckpointInvalid = errors.New("geckoftl: checkpoint file is invalid")
	// ErrCheckpointLocked is returned by Open when the WithCheckpointPath
	// file is already locked by another live device: two devices flushing
	// checkpoints to one path would silently corrupt each other's warm
	// restarts, so the second Open fails fast instead.
	ErrCheckpointLocked = errors.New("geckoftl: checkpoint path is locked by another device")
	// ErrQueueFull is delivered through a Ticket when the shedding admission
	// policy (AdmitShed) drops an asynchronous submission whose shard backlog
	// exceeded the queue depth's budget; the drop is counted in
	// Snapshot.Queue.Shed.
	ErrQueueFull = errors.New("geckoftl: submission queue is full")
	// ErrPending is returned by Ticket.Err while the submitted operation is
	// still in flight.
	ErrPending = errors.New("geckoftl: operation still in flight")
)

// checkpointErr classifies a checkpoint load failure under
// ErrCheckpointInvalid, keeping the internal chain inspectable.
func checkpointErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrCheckpointInvalid) {
		return err
	}
	return fmt.Errorf("%w: %w", ErrCheckpointInvalid, err)
}

// configErr classifies a parameter-validation error from an internal
// constructor or parser under ErrInvalidConfig. The raw internal error stays
// in the chain for its message.
func configErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrInvalidConfig) {
		return err
	}
	return fmt.Errorf("%w: %w", ErrInvalidConfig, err)
}

// wrapErr classifies an internal error under the public taxonomy. Errors
// already carrying a public sentinel pass through untouched.
func wrapErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrClosed), errors.Is(err, ErrPowerFailed),
		errors.Is(err, ErrOutOfRange), errors.Is(err, ErrInvalidConfig),
		errors.Is(err, ErrReadDecayed), errors.Is(err, ErrCheckpointInvalid),
		errors.Is(err, ErrCheckpointLocked), errors.Is(err, ErrQueueFull),
		errors.Is(err, ErrPending):
		return err
	case errors.Is(err, flash.ErrPowerFailed):
		return fmt.Errorf("%w: %w", ErrPowerFailed, err)
	case errors.Is(err, flash.ErrOutOfRange):
		return fmt.Errorf("%w: %w", ErrOutOfRange, err)
	case errors.Is(err, flash.ErrReadDecayed):
		return fmt.Errorf("%w: %w", ErrReadDecayed, err)
	case errors.Is(err, checkpoint.ErrLocked):
		return fmt.Errorf("%w: %w", ErrCheckpointLocked, err)
	case errors.Is(err, queue.ErrFull):
		return fmt.Errorf("%w: %w", ErrQueueFull, err)
	case errors.Is(err, queue.ErrClosed):
		return fmt.Errorf("%w: %w", ErrClosed, err)
	case errors.Is(err, queue.ErrPending):
		return fmt.Errorf("%w: %w", ErrPending, err)
	default:
		return err
	}
}
