package geckoftl_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"geckoftl"
)

func open(t *testing.T, opts ...geckoftl.Option) *geckoftl.Device {
	t.Helper()
	dev, err := geckoftl.Open(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func TestOpenDefaults(t *testing.T) {
	dev := open(t)
	g := dev.Geometry()
	if g.Blocks != 256 || g.PagesPerBlock != 32 || g.PageSizeBytes != 1024 {
		t.Errorf("unexpected default geometry %+v", g)
	}
	if g.FTL != "GeckoFTL" || g.Shards != 1 {
		t.Errorf("unexpected default FTL %q / shards %d", g.FTL, g.Shards)
	}
	if g.LogicalPages != dev.LogicalPages() || g.LogicalPages <= 0 {
		t.Errorf("logical pages %d inconsistent", g.LogicalPages)
	}
}

func TestOpenOptions(t *testing.T) {
	dev := open(t,
		geckoftl.WithGeometry(512, 16, 512),
		geckoftl.WithChannels(4, 2),
		geckoftl.WithOverProvision(0.6),
		geckoftl.WithFTL("lazyftl"),
		geckoftl.WithCacheEntries(512),
		geckoftl.WithGCMode(geckoftl.GCIncremental),
	)
	g := dev.Geometry()
	if g.Channels != 4 || g.DiesPerChannel != 2 || g.Shards != 4 {
		t.Errorf("unexpected topology %+v", g)
	}
	if g.FTL != "LazyFTL/4" && g.FTL != "LazyFTL" {
		t.Errorf("unexpected FTL name %q", g.FTL)
	}
}

func TestOpenInvalidConfig(t *testing.T) {
	cases := [][]geckoftl.Option{
		{geckoftl.WithGeometry(0, 32, 1024)},
		{geckoftl.WithOverProvision(1.5)},
		{geckoftl.WithChannels(0, 1)},
		{geckoftl.WithFTL("nope")},
		{geckoftl.WithCacheEntries(0)},
		{geckoftl.WithGCPagesPerWrite(-1)},
		{geckoftl.WithShards(0)},
		// A valid option set whose engine construction fails: more shards
		// than blocks.
		{geckoftl.WithGeometry(8, 16, 512), geckoftl.WithShards(16)},
	}
	for i, opts := range cases {
		if _, err := geckoftl.Open(opts...); !errors.Is(err, geckoftl.ErrInvalidConfig) {
			t.Errorf("case %d: Open returned %v, want errors.Is(..., ErrInvalidConfig)", i, err)
		}
	}
}

func TestClosedDevice(t *testing.T) {
	ctx := context.Background()
	dev := open(t)
	if err := dev.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(ctx); !errors.Is(err, geckoftl.ErrClosed) {
		t.Errorf("second Close returned %v, want ErrClosed", err)
	}
	if err := dev.Write(ctx, 0); !errors.Is(err, geckoftl.ErrClosed) {
		t.Errorf("Write after Close returned %v, want ErrClosed", err)
	}
	if err := dev.Trim(ctx, 0, 1); !errors.Is(err, geckoftl.ErrClosed) {
		t.Errorf("Trim after Close returned %v, want ErrClosed", err)
	}
	if _, err := dev.Mapped(0); !errors.Is(err, geckoftl.ErrClosed) {
		t.Errorf("Mapped after Close returned %v, want ErrClosed", err)
	}
	if err := dev.PowerFail(); !errors.Is(err, geckoftl.ErrClosed) {
		t.Errorf("PowerFail after Close returned %v, want ErrClosed", err)
	}
	if _, err := dev.Recover(ctx); !errors.Is(err, geckoftl.ErrClosed) {
		t.Errorf("Recover after Close returned %v, want ErrClosed", err)
	}
}

func TestOutOfRange(t *testing.T) {
	ctx := context.Background()
	dev := open(t)
	end := geckoftl.LPN(dev.LogicalPages())
	if err := dev.Write(ctx, end); !errors.Is(err, geckoftl.ErrOutOfRange) {
		t.Errorf("Write(end) returned %v, want ErrOutOfRange", err)
	}
	if err := dev.Read(ctx, -1); !errors.Is(err, geckoftl.ErrOutOfRange) {
		t.Errorf("Read(-1) returned %v, want ErrOutOfRange", err)
	}
	if err := dev.Trim(ctx, end-1, 2); !errors.Is(err, geckoftl.ErrOutOfRange) {
		t.Errorf("Trim over the end returned %v, want ErrOutOfRange", err)
	}
	if err := dev.WriteBatch(ctx, []geckoftl.LPN{0, end}); !errors.Is(err, geckoftl.ErrOutOfRange) {
		t.Errorf("WriteBatch with bad page returned %v, want ErrOutOfRange", err)
	}
}

func TestPowerFailTaxonomy(t *testing.T) {
	ctx := context.Background()
	dev := open(t)
	if err := dev.Write(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := dev.PowerFail(); err != nil {
		t.Fatal(err)
	}
	if err := dev.Write(ctx, 1); !errors.Is(err, geckoftl.ErrPowerFailed) {
		t.Errorf("Write while failed returned %v, want ErrPowerFailed", err)
	}
	if err := dev.Flush(ctx); !errors.Is(err, geckoftl.ErrPowerFailed) {
		t.Errorf("Flush while failed returned %v, want ErrPowerFailed", err)
	}
	if err := dev.PowerFail(); !errors.Is(err, geckoftl.ErrPowerFailed) {
		t.Errorf("second PowerFail returned %v, want ErrPowerFailed", err)
	}
	report, err := dev.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.UsedBattery {
		t.Error("GeckoFTL recovery reported battery use")
	}
	if err := dev.Write(ctx, 1); err != nil {
		t.Errorf("write after recovery: %v", err)
	}
	if _, err := dev.Recover(ctx); err == nil {
		t.Error("Recover without PowerFail accepted")
	}
}

func TestContextCancellation(t *testing.T) {
	dev := open(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := dev.Write(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("Write with cancelled ctx returned %v, want context.Canceled", err)
	}
	if err := dev.Trim(ctx, 0, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("Trim with cancelled ctx returned %v, want context.Canceled", err)
	}
	if _, err := dev.Recover(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Recover with cancelled ctx returned %v, want context.Canceled", err)
	}
}

func TestTrimAndSnapshot(t *testing.T) {
	ctx := context.Background()
	dev := open(t, geckoftl.WithChannels(2, 1), geckoftl.WithCacheEntries(512))
	lp := dev.LogicalPages()

	var lpns []geckoftl.LPN
	for i := int64(0); i < lp; i++ {
		lpns = append(lpns, geckoftl.LPN(i))
	}
	if err := dev.WriteBatch(ctx, lpns); err != nil {
		t.Fatal(err)
	}
	if err := dev.Trim(ctx, 0, 64); err != nil {
		t.Fatal(err)
	}
	for lpn := geckoftl.LPN(0); lpn < 64; lpn++ {
		mapped, err := dev.Mapped(lpn)
		if err != nil {
			t.Fatal(err)
		}
		if mapped {
			t.Fatalf("page %d still mapped after Trim", lpn)
		}
		if err := dev.Read(ctx, lpn); err != nil {
			t.Fatalf("read of trimmed page: %v", err)
		}
	}
	if mapped, _ := dev.Mapped(64); !mapped {
		t.Error("page 64 (outside the trimmed range) reads as unmapped")
	}

	snap := dev.Snapshot()
	if snap.Ops.Writes != lp || snap.Ops.Trims != 64 {
		t.Errorf("snapshot ops = %+v, want %d writes / 64 trims", snap.Ops, lp)
	}
	if snap.Ops.TrimmedPages == 0 && snap.Ops.Trims > 0 {
		// Lazy identification may defer some, but a flush settles all.
		if err := dev.Flush(ctx); err != nil {
			t.Fatal(err)
		}
		snap = dev.Snapshot()
	}
	if snap.Ops.TrimmedPages != 64 {
		t.Errorf("TrimmedPages = %d, want 64", snap.Ops.TrimmedPages)
	}
	if snap.WriteAmplification < 1 {
		t.Errorf("write-amplification %.3f below 1", snap.WriteAmplification)
	}
	if snap.WriteLatency.Count != lp {
		t.Errorf("write latency count %d, want %d", snap.WriteLatency.Count, lp)
	}
	if snap.TrimLatency.Count != 64 {
		t.Errorf("trim latency count %d, want 64", snap.TrimLatency.Count)
	}
	if snap.RAMBytes <= 0 || snap.SimulatedTime <= 0 {
		t.Errorf("RAM %d / simulated time %v not positive", snap.RAMBytes, snap.SimulatedTime)
	}

	dev.ResetStats()
	snap = dev.Snapshot()
	if snap.WindowWrites != 0 || snap.WriteLatency.Count != 0 {
		t.Errorf("ResetStats did not clear the window: %+v", snap)
	}
	if snap.Ops.Writes != lp {
		t.Errorf("ResetStats cleared cumulative ops: %+v", snap.Ops)
	}
	if err := dev.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestRewriteAfterTrim(t *testing.T) {
	ctx := context.Background()
	dev := open(t)
	if err := dev.Write(ctx, 7); err != nil {
		t.Fatal(err)
	}
	if err := dev.Trim(ctx, 7, 1); err != nil {
		t.Fatal(err)
	}
	if err := dev.Write(ctx, 7); err != nil {
		t.Fatal(err)
	}
	mapped, err := dev.Mapped(7)
	if err != nil {
		t.Fatal(err)
	}
	if !mapped {
		t.Error("page unmapped after rewrite")
	}
}

func TestCloseWithCancelledContextIsRetryable(t *testing.T) {
	dev := open(t)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := dev.Close(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close with cancelled ctx returned %v, want context.Canceled", err)
	}
	// The device must not have latched closed: a retry with a live context
	// still performs the final flush.
	if err := dev.Write(context.Background(), 0); err != nil {
		t.Fatalf("write after cancelled Close: %v", err)
	}
	if err := dev.Close(context.Background()); err != nil {
		t.Fatalf("retried Close: %v", err)
	}
}

// errCallCountingCtx cancels itself after its Err method has been consulted
// a fixed number of times. It deterministically models "the caller cancels
// while the batch is in flight": the guard's entry check passes, a few
// per-operation checks pass, then every later check observes cancellation.
type errCallCountingCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *errCallCountingCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestBatchCancellation pins the batch cancellation contract: a pre-cancelled
// context performs no operations at all, and a context cancelled mid-batch
// stops each shard's sub-batch at an operation boundary — pre-fix, the
// engine checked the context only on entry and ran cancelled batches to
// completion.
func TestBatchCancellation(t *testing.T) {
	ctx := context.Background()
	dev := open(t, geckoftl.WithChannels(2, 1), geckoftl.WithCacheEntries(512))

	lpns := make([]geckoftl.LPN, 96)
	for i := range lpns {
		lpns[i] = geckoftl.LPN(i)
	}

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	for name, err := range map[string]error{
		"WriteBatch": dev.WriteBatch(cancelled, lpns),
		"ReadBatch":  dev.ReadBatch(cancelled, lpns),
		"TrimBatch":  dev.TrimBatch(cancelled, lpns),
	} {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s with pre-cancelled ctx returned %v, want context.Canceled", name, err)
		}
	}
	if snap := dev.Snapshot(); snap.Ops.Writes != 0 || snap.Ops.Reads != 0 || snap.Ops.Trims != 0 {
		t.Fatalf("pre-cancelled batches performed operations: %+v", snap.Ops)
	}

	// Cancel after a handful of per-operation checks: some pages must have
	// been written, the rest must have been skipped.
	mid := &errCallCountingCtx{Context: ctx, after: 9}
	err := dev.WriteBatch(mid, lpns)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-batch cancelled WriteBatch returned %v, want context.Canceled", err)
	}
	snap := dev.Snapshot()
	if snap.Ops.Writes == 0 {
		t.Error("mid-batch cancellation stopped the batch before any operation ran")
	}
	if snap.Ops.Writes >= int64(len(lpns)) {
		t.Errorf("mid-batch cancelled WriteBatch still wrote all %d pages", len(lpns))
	}
	// The device stays usable; the skipped pages can be retried.
	if err := dev.WriteBatch(ctx, lpns); err != nil {
		t.Fatal(err)
	}
	if err := dev.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotWindowAfterRecover pins the recovery re-base of the
// measurement window: a Snapshot taken after crash + recovery + fresh
// traffic must describe only the post-recovery window. Pre-fix the window
// straddled the crash, so it mixed pre-crash writes and the recovery scan's
// IO into the write-amplification figure.
func TestSnapshotWindowAfterRecover(t *testing.T) {
	ctx := context.Background()
	dev := open(t, geckoftl.WithGeometry(128, 16, 512), geckoftl.WithCacheEntries(256))
	lp := dev.LogicalPages()

	gen, err := geckoftl.NewUniform(lp, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 2*lp; i++ {
		if err := dev.Write(ctx, gen.Next().Page); err != nil {
			t.Fatal(err)
		}
	}
	dev.ResetStats()
	for i := 0; i < 500; i++ {
		if err := dev.Write(ctx, gen.Next().Page); err != nil {
			t.Fatal(err)
		}
	}
	if err := dev.PowerFail(); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Recover(ctx); err != nil {
		t.Fatal(err)
	}

	const post = 200
	for i := 0; i < post; i++ {
		if err := dev.Write(ctx, gen.Next().Page); err != nil {
			t.Fatal(err)
		}
	}
	snap := dev.Snapshot()
	if snap.WindowWrites != post {
		t.Errorf("post-recovery window counts %d writes, want %d (window not re-based at Recover)",
			snap.WindowWrites, post)
	}
	if snap.WriteLatency.Count != post {
		t.Errorf("post-recovery latency window holds %d writes, want %d", snap.WriteLatency.Count, post)
	}
	if snap.WriteAmplification < 1 {
		t.Errorf("post-recovery WA %.3f below 1", snap.WriteAmplification)
	}
	if snap.WriteAmplification > 20 {
		t.Errorf("post-recovery WA %.3f implausibly high: recovery IO leaked into the write window",
			snap.WriteAmplification)
	}
	// Cumulative counters must NOT have been re-based.
	if snap.Ops.Writes != 2*lp+500+post {
		t.Errorf("cumulative writes %d, want %d", snap.Ops.Writes, 2*lp+500+post)
	}
}

// TestSnapshotWearFields exercises the public wear surface: erase-count
// fields appear in Snapshot, and the hot/cold + wear knobs round-trip
// through Open.
func TestSnapshotWearFields(t *testing.T) {
	ctx := context.Background()
	dev := open(t,
		geckoftl.WithGeometry(128, 16, 512),
		geckoftl.WithCacheEntries(256),
		geckoftl.WithHotColdSeparation(true),
		geckoftl.WithWearAwareAllocation(true),
		geckoftl.WithVictimPolicy(geckoftl.VictimCostBenefit),
	)
	lp := dev.LogicalPages()
	gen, err := geckoftl.NewHotCold(lp, 0.2, 0.8, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3*lp; i++ {
		if err := dev.Write(ctx, gen.Next().Page); err != nil {
			t.Fatal(err)
		}
	}
	snap := dev.Snapshot()
	if snap.MaxEraseCount <= 0 {
		t.Errorf("MaxEraseCount = %d after %d writes, want > 0", snap.MaxEraseCount, 3*lp)
	}
	if snap.EraseSpread != snap.MaxEraseCount-snap.MinEraseCount || snap.EraseSpread < 0 {
		t.Errorf("inconsistent wear fields: min %d max %d spread %d",
			snap.MinEraseCount, snap.MaxEraseCount, snap.EraseSpread)
	}
	if snap.MeanEraseCount < float64(snap.MinEraseCount) || snap.MeanEraseCount > float64(snap.MaxEraseCount) {
		t.Errorf("mean erase count %.2f outside [min %d, max %d]",
			snap.MeanEraseCount, snap.MinEraseCount, snap.MaxEraseCount)
	}
	if err := dev.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
