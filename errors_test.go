package geckoftl

import (
	"errors"
	"strings"
	"testing"
)

// TestConfigErrorsClassified locks the taxonomy contract the errwrap
// analyzer enforces structurally: every rejected workload or option
// parameter surfaces as ErrInvalidConfig under errors.Is, with the internal
// message preserved in the chain.
func TestConfigErrorsClassified(t *testing.T) {
	cases := []struct {
		name string
		err  func() error
	}{
		{"WorkloadByName", func() error { _, err := WorkloadByName("nosuch", 100, 1); return err }},
		{"NewUniform", func() error { _, err := NewUniform(0, 1); return err }},
		{"NewSequential", func() error { _, err := NewSequential(-1); return err }},
		{"NewZipfian", func() error { _, err := NewZipfian(100, 0.5, 1); return err }},
		{"NewHotCold", func() error { _, err := NewHotCold(100, 1.5, 0.8, 1); return err }},
		{"NewMixed", func() error {
			w, werr := NewUniform(100, 1)
			if werr != nil {
				return werr
			}
			_, err := NewMixed(w, 100, 1.5, 1)
			return err
		}},
		{"NewTrimming", func() error {
			w, werr := NewUniform(100, 1)
			if werr != nil {
				return werr
			}
			_, err := NewTrimming(w, 100, -0.1, 1)
			return err
		}},
		{"ParseTrace", func() error { _, err := ParseTrace("bad", strings.NewReader("X 42\n")); return err }},
		{"ParseGCMode", func() error { _, err := ParseGCMode("nosuch"); return err }},
		{"ParseVictimPolicy", func() error { _, err := ParseVictimPolicy("nosuch"); return err }},
		{"ParseAdmissionPolicy", func() error { _, err := ParseAdmissionPolicy("nosuch"); return err }},
		{"NewPoissonArrivals", func() error { _, err := NewPoissonArrivals(0, 1); return err }},
		{"NewBurstyArrivals", func() error { _, err := NewBurstyArrivals(100, 1, 1, 1); return err }},
		{"NewOpenLoop", func() error { _, err := NewOpenLoop(nil, nil); return err }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.err()
			if err == nil {
				t.Fatal("expected a rejection, got nil")
			}
			if !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("error %q does not match ErrInvalidConfig", err)
			}
		})
	}
}

// TestConfigErrNoDoubleWrap checks configErr is idempotent: an error already
// carrying the sentinel passes through unchanged.
func TestConfigErrNoDoubleWrap(t *testing.T) {
	base := configErr(errors.New("bad knob"))
	again := configErr(base)
	if again != base {
		t.Fatalf("configErr re-wrapped an already-classified error: %q", again)
	}
	if configErr(nil) != nil {
		t.Fatal("configErr(nil) != nil")
	}
}
