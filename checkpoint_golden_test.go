package geckoftl_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"geckoftl"
	"geckoftl/internal/checkpoint"
)

var updateGolden = flag.Bool("update", false, "rewrite golden checkpoint files")

// goldenCheckpointBytes produces the canonical deterministic checkpoint: a
// fixed single-channel device under a fixed seeded workload, cleanly
// closed. Single-channel matters: with multiple shards the device-global
// write sequence is assigned in goroutine-interleaving order, so only a
// one-shard device checkpoints to reproducible bytes across runs and hosts.
func goldenCheckpointBytes(t *testing.T) []byte {
	t.Helper()
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "dev.ckpt")
	dev := open(t,
		geckoftl.WithCacheEntries(512),
		geckoftl.WithCheckpointPath(path),
	)
	fillRandom(t, dev, 20160626) // SIGMOD '16 program week
	if err := dev.Close(ctx); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCheckpointGoldenV1 pins the version-1 on-disk format byte for byte
// against a committed golden file. A mismatch means the encoding changed: if
// intentional, bump checkpoint.Version so old files fall back cleanly, and
// regenerate with `go test -run TestCheckpointGoldenV1 -update ./...`.
func TestCheckpointGoldenV1(t *testing.T) {
	data := goldenCheckpointBytes(t)
	golden := filepath.Join("testdata", "checkpoint_v1.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("checkpoint bytes diverge from the committed v1 golden (%d bytes now, %d committed): format or determinism regression", len(data), len(want))
	}
	f, err := checkpoint.Decode(want)
	if err != nil {
		t.Fatalf("committed golden no longer decodes: %v", err)
	}
	if f.Version != 1 {
		t.Fatalf("golden decodes as version %d, want 1", f.Version)
	}
}

// TestCheckpointFutureVersionFallsBack pins forward compatibility: a
// checkpoint stamped with an unknown future format version — everything
// else intact — must be rejected at Open and fall back to a cold start, so
// downgrading a deployment never loads state it cannot parse.
func TestCheckpointFutureVersionFallsBack(t *testing.T) {
	ctx := context.Background()
	data := goldenCheckpointBytes(t)
	// The version word sits after the 8-byte magic; it is outside any
	// section checksum, so the bump alone makes a well-formed future file.
	binary.LittleEndian.PutUint32(data[8:], 999)
	if _, err := checkpoint.Decode(data); !errors.Is(err, checkpoint.ErrInvalid) {
		t.Fatalf("future version decoded: %v", err)
	}
	path := filepath.Join(t.TempDir(), "dev.ckpt")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	dev := ckptOpen(t, path)
	defer dev.Close(ctx)
	load := dev.CheckpointLoad()
	if !load.Attempted || load.Loaded || !errors.Is(load.Err, geckoftl.ErrCheckpointInvalid) {
		t.Fatalf("CheckpointLoad = %+v, want a classified rejection", load)
	}
	if err := dev.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	fillRandom(t, dev, 1)
	if err := dev.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
