package geckoftl_test

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"geckoftl"
)

// Example opens a small device, writes and reads a few pages, and inspects
// the statistics snapshot.
func Example() {
	ctx := context.Background()
	dev, err := geckoftl.Open(
		geckoftl.WithGeometry(256, 32, 1024),
		geckoftl.WithCacheEntries(1024),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer dev.Close(ctx)

	for lpn := geckoftl.LPN(0); lpn < 100; lpn++ {
		if err := dev.Write(ctx, lpn); err != nil {
			log.Fatal(err)
		}
	}
	if err := dev.Read(ctx, 42); err != nil {
		log.Fatal(err)
	}

	snap := dev.Snapshot()
	fmt.Printf("writes=%d reads=%d\n", snap.Ops.Writes, snap.Ops.Reads)
	fmt.Printf("write latencies recorded: %d\n", snap.WriteLatency.Count)
	// Output:
	// writes=100 reads=1
	// write latencies recorded: 100
}

// ExampleDevice_Trim shows the host discarding a page range: trimmed pages
// read as zeroes and their before-images become free invalid space for the
// garbage collector.
func ExampleDevice_Trim() {
	ctx := context.Background()
	dev, err := geckoftl.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer dev.Close(ctx)

	if err := dev.Write(ctx, 7); err != nil {
		log.Fatal(err)
	}
	if err := dev.Trim(ctx, 7, 1); err != nil {
		log.Fatal(err)
	}
	mapped, err := dev.Mapped(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped after trim: %v\n", mapped)

	// Reading a trimmed page succeeds and returns zeroes, like a
	// never-written page.
	fmt.Printf("read after trim: %v\n", dev.Read(ctx, 7))
	// Output:
	// mapped after trim: false
	// read after trim: <nil>
}

// ExampleDevice_warmRestart reboots a device cleanly through its metadata
// checkpoint: Restart flushes, writes the checkpoint to the configured path,
// drops all RAM state, and restores it warm — no GeckoRec flash scan.
func ExampleDevice_warmRestart() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "geckoftl-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	dev, err := geckoftl.Open(
		geckoftl.WithChannels(2, 1),
		geckoftl.WithCacheEntries(512),
		geckoftl.WithCheckpointPath(filepath.Join(dir, "dev.ckpt")),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer dev.Close(ctx)

	for lpn := geckoftl.LPN(0); lpn < 500; lpn++ {
		if err := dev.Write(ctx, lpn); err != nil {
			log.Fatal(err)
		}
	}
	report, err := dev.Restart(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm: %v, checkpointed: %v\n", report.Warm, report.CheckpointBytes > 0)

	mapped, err := dev.Mapped(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("page 42 survives the reboot: %v\n", mapped)
	fmt.Printf("consistency: %v\n", dev.CheckConsistency())
	// Output:
	// warm: true, checkpointed: true
	// page 42 survives the reboot: true
	// consistency: <nil>
}

// ExampleDevice_Recover crashes a device mid-workload and recovers it; the
// typed error taxonomy classifies operations attempted while the power is
// out.
func ExampleDevice_Recover() {
	ctx := context.Background()
	dev, err := geckoftl.Open(geckoftl.WithChannels(2, 1), geckoftl.WithCacheEntries(512))
	if err != nil {
		log.Fatal(err)
	}
	defer dev.Close(ctx)

	for lpn := geckoftl.LPN(0); lpn < 500; lpn++ {
		if err := dev.Write(ctx, lpn); err != nil {
			log.Fatal(err)
		}
	}
	if err := dev.PowerFail(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("write while failed is ErrPowerFailed: %v\n",
		errors.Is(dev.Write(ctx, 0), geckoftl.ErrPowerFailed))

	report, err := dev.Recover(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered shards: %d, battery: %v\n", len(report.Shards), report.UsedBattery)
	fmt.Printf("consistency: %v\n", dev.CheckConsistency())
	// Output:
	// write while failed is ErrPowerFailed: true
	// recovered shards: 2, battery: false
	// consistency: <nil>
}
