package geckoftl

import (
	"context"
	"errors"
	"testing"
)

// TestAsyncSubmitDrain drives the asynchronous path end to end: submissions
// return tickets, Drain quiesces, and Snapshot.Queue accounts for every
// operation.
func TestAsyncSubmitDrain(t *testing.T) {
	d, err := Open(WithChannels(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close(context.Background())
	ctx := context.Background()
	const n = 200
	tickets := make([]*Ticket, 0, n)
	for i := 0; i < n; i++ {
		var tk *Ticket
		var err error
		switch i % 3 {
		case 0:
			tk, err = d.SubmitWrite(ctx, LPN(i%int(d.LogicalPages())))
		case 1:
			tk, err = d.SubmitRead(ctx, LPN(i%int(d.LogicalPages())))
		default:
			tk, err = d.SubmitTrim(ctx, LPN(i%int(d.LogicalPages())))
		}
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		tickets = append(tickets, tk)
	}
	if err := d.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for i, tk := range tickets {
		if err := tk.Err(); err != nil {
			t.Errorf("ticket %d: %v", i, err)
		}
		// Writes always consume device time; reads of never-written pages
		// cost no IO, so only write tickets must carry a completion instant.
		if i%3 == 0 && tk.CompletedAt() <= 0 {
			t.Errorf("write ticket %d has no completion instant", i)
		}
	}
	q := d.Snapshot().Queue
	if q.Submitted != n || q.Completed != n || q.InFlight != 0 || q.Shed != 0 {
		t.Errorf("queue stats after %d ops: %+v", n, q)
	}
	if q.Depth != DefaultQueueDepth || q.Policy != "wait" {
		t.Errorf("default queue config: %+v; want depth %d, policy wait", q, DefaultQueueDepth)
	}
	if q.Latency.Count == 0 {
		t.Error("no submission-to-completion latencies recorded")
	}
}

// TestAsyncShedBoundsBacklog pins the shedding admission policy through the
// public API: at depth 1 a producer that outruns the device has its overflow
// dropped with ErrQueueFull — visible on the ticket and counted in
// Snapshot.Queue.Shed — while every submission is still accounted for.
func TestAsyncShedBoundsBacklog(t *testing.T) {
	d, err := Open(WithQueueDepth(1), WithAdmissionPolicy(AdmitShed))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close(context.Background())
	ctx := context.Background()
	const n = 500
	// Submit without waiting: the producer runs ahead of the device, so the
	// shard's virtual backlog outgrows the one-quantum budget and admission
	// control engages.
	tickets := make([]*Ticket, 0, n)
	for i := 0; i < n; i++ {
		tk, err := d.SubmitWrite(ctx, LPN(i%int(d.LogicalPages())))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		tickets = append(tickets, tk)
	}
	if err := d.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	var shed int64
	for i, tk := range tickets {
		if err := tk.Err(); errors.Is(err, ErrQueueFull) {
			shed++
		} else if err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
	}
	q := d.Snapshot().Queue
	if q.Shed != shed {
		t.Errorf("Snapshot.Queue.Shed = %d; %d tickets failed with ErrQueueFull", q.Shed, shed)
	}
	if q.Shed == 0 {
		t.Error("a depth-1 shedding queue under a tight producer loop shed nothing")
	}
	if q.Completed+q.Shed != q.Submitted {
		t.Errorf("accounting: %+v", q)
	}
}

// TestAsyncCancellation pins the cancellation contract: once the submission
// context dies, every still-queued operation fails with the context's error
// before performing IO, and completed + cancelled covers every submission.
func TestAsyncCancellation(t *testing.T) {
	d, err := Open(WithQueueDepth(64))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close(context.Background())
	ctx, cancel := context.WithCancel(context.Background())
	const n = 300
	tickets := make([]*Ticket, 0, n)
	for i := 0; i < n; i++ {
		tk, err := d.SubmitWrite(ctx, LPN(i%int(d.LogicalPages())))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		tickets = append(tickets, tk)
	}
	cancel()
	var completed, cancelled int64
	for i, tk := range tickets {
		switch err := tk.Wait(context.Background()); {
		case err == nil:
			completed++
		case errors.Is(err, context.Canceled):
			cancelled++
		default:
			t.Fatalf("ticket %d: unexpected outcome %v", i, err)
		}
	}
	if completed+cancelled != n {
		t.Errorf("fates: %d completed + %d cancelled != %d submitted", completed, cancelled, n)
	}
	q := d.Snapshot().Queue
	if q.Completed != completed || q.Cancelled != cancelled {
		t.Errorf("Snapshot.Queue %+v disagrees with observed fates (%d completed, %d cancelled)", q, completed, cancelled)
	}
}

// TestAsyncCloseSemantics: Close completes queued work, later submissions and
// drains fail with ErrClosed, and pre-close tickets resolve.
func TestAsyncCloseSemantics(t *testing.T) {
	d, err := Open()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	tickets := make([]*Ticket, 0, 50)
	for i := 0; i < 50; i++ {
		tk, err := d.SubmitWrite(ctx, LPN(i))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		tickets = append(tickets, tk)
	}
	if err := d.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i, tk := range tickets {
		if err := tk.Err(); err != nil {
			t.Errorf("pre-close ticket %d: %v", i, err)
		}
	}
	if _, err := d.SubmitWrite(ctx, 0); !errors.Is(err, ErrClosed) {
		t.Errorf("SubmitWrite after Close = %v; want ErrClosed", err)
	}
	if err := d.Drain(ctx); !errors.Is(err, ErrClosed) {
		t.Errorf("Drain after Close = %v; want ErrClosed", err)
	}
}

// TestAsyncOutOfRange: the address check fails at submission, not through the
// ticket.
func TestAsyncOutOfRange(t *testing.T) {
	d, err := Open()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close(context.Background())
	if _, err := d.SubmitWrite(context.Background(), LPN(d.LogicalPages())); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("SubmitWrite out of range = %v; want ErrOutOfRange", err)
	}
}

// TestAsyncDrainWithoutUse: a device that never submitted asynchronously
// drains trivially and reports zeroed queue counters at the configured shape.
func TestAsyncDrainWithoutUse(t *testing.T) {
	d, err := Open(WithQueueDepth(7), WithAdmissionPolicy(AdmitShed))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close(context.Background())
	if err := d.Drain(context.Background()); err != nil {
		t.Fatalf("Drain on unused queue: %v", err)
	}
	q := d.Snapshot().Queue
	if q.Submitted != 0 || q.Depth != 7 || q.Policy != "shed" {
		t.Errorf("unused queue stats: %+v", q)
	}
}

func TestQueueOptionValidation(t *testing.T) {
	if _, err := Open(WithQueueDepth(0)); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("WithQueueDepth(0) = %v; want ErrInvalidConfig", err)
	}
	if _, err := Open(WithAdmissionPolicy(AdmissionPolicy(9))); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("bad admission policy = %v; want ErrInvalidConfig", err)
	}
	if _, err := ParseAdmissionPolicy("drop"); !errors.Is(err, ErrInvalidConfig) {
		t.Error("ParseAdmissionPolicy accepted an unknown name")
	}
	for _, name := range []string{"shed", "wait"} {
		p, err := ParseAdmissionPolicy(name)
		if err != nil || p.String() != name {
			t.Errorf("ParseAdmissionPolicy(%q) = %v, %v", name, p, err)
		}
	}
}
